/**
 * @file
 * Tests for the ceerd serving stack: protocol codecs, frame-header
 * validation, the server's fail-closed edge cases (malformed frames,
 * oversized payloads, checksum mismatches, slow-loris stalls,
 * admission overload), byte identity against in-process recommend(),
 * hot reload, and the loadgen percentile math.
 *
 * Every rejection test asserts the same contract: the client receives
 * a typed Error frame (protocol.h errc::), the connection is closed
 * (fail closed), and the `serve.rejected` counter advances.
 */

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cloud/instances.h"
#include "core/recommender.h"
#include "core/trainer.h"
#include "models/model_zoo.h"
#include "obs/metrics.h"
#include "profile/profiler.h"
#include "serve/client.h"
#include "serve/loadgen.h"
#include "serve/net.h"
#include "serve/plan_cache.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace ceer {
namespace serve {
namespace {

/** A cheap but real trained model, shared across tests. */
const core::CeerModel &
cheapModel()
{
    static const core::CeerModel model = [] {
        profile::CollectOptions options;
        options.iterations = 12;
        const profile::ProfileDataset dataset = profile::collectProfiles(
            {"vgg_11", "inception_v1"}, options);
        return core::trainCeer(dataset);
    }();
    return model;
}

/** Boots a server on an ephemeral port; asserts the bind worked. */
std::unique_ptr<Server>
startServer(ServerOptions options = {})
{
    options.port = 0;
    auto server = std::make_unique<Server>(
        cheapModel(), cloud::InstanceCatalog::awsOnDemand(), options);
    std::string error;
    EXPECT_TRUE(server->tryStart(&error)) << error;
    return server;
}

/** Connects a raw socket (no client framing) to a test server. */
Fd
rawConnect(int port)
{
    std::string error;
    const int fd = connectTcp("127.0.0.1", port, &error);
    EXPECT_GE(fd, 0) << error;
    EXPECT_TRUE(setRecvTimeoutMs(fd, 5000, &error)) << error;
    return Fd(fd);
}

/** Reads one complete frame off a raw socket. */
bool
readFrame(int fd, FrameHeader *header, std::string *payload)
{
    char raw[kFrameHeaderBytes];
    std::string error;
    if (!recvAll(fd, raw, sizeof raw, &error))
        return false;
    if (!decodeFrameHeader(raw, header, &error))
        return false;
    payload->assign(header->payloadBytes, '\0');
    return header->payloadBytes == 0 ||
           recvAll(fd, payload->data(), payload->size(), &error);
}

/**
 * The fail-closed contract: a typed Error frame with @p code, then
 * EOF. Observing EOF also sequences the test after the server's
 * `serve.rejected` increment (the reactor closes the fd after
 * counting).
 */
void
expectErrorThenEof(int fd, const std::string &code)
{
    FrameHeader header;
    std::string payload;
    ASSERT_TRUE(readFrame(fd, &header, &payload));
    EXPECT_EQ(header.type, FrameType::Error);
    ErrorInfo info;
    std::string error;
    ASSERT_TRUE(decodeError(payload, &info, &error)) << error;
    EXPECT_EQ(info.code, code);
    char byte = 0;
    std::string eof_error;
    EXPECT_FALSE(recvAll(fd, &byte, 1, &eof_error));
}

/**
 * Waits for a counter to reach @p at_least. The increment and the
 * courtesy Error frame are not strictly ordered for a client that
 * does not wait for EOF, so counter assertions poll briefly.
 */
bool
waitForCounter(const std::string &name, std::uint64_t at_least)
{
    for (int i = 0; i < 500; ++i) {
        if (obs::snapshotMetrics().counterValue(name) >= at_least)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
}

/** The reply bytes an in-process recommend() would produce. */
std::string
localReplyBytes(const RecommendRequest &request)
{
    const core::CeerPredictor predictor(cheapModel());
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();
    const graph::Graph g =
        models::buildModel(request.model, request.batch);
    core::WorkloadSpec workload{&g, request.datasetSamples,
                                request.batch};
    core::Constraints constraints;
    constraints.hourlyBudgetUsd = request.hourlyBudgetUsd;
    constraints.hourlyToleranceUsd = request.hourlyToleranceUsd;
    constraints.totalBudgetUsd = request.totalBudgetUsd;
    constraints.enforceGpuMemory = request.enforceGpuMemory;
    const core::Objective objective =
        request.objective == "time" ? core::Objective::MinTrainingTime
                                    : core::Objective::MinCost;
    return encodeRecommendResponse(
        responseFromRecommendation(core::recommend(
            predictor, workload, catalog.instances(),
            core::objectiveFunction(objective), constraints)));
}

// --- Protocol codecs ---------------------------------------------------

TEST(ServeProtocolTest, FrameHeaderRoundTrips)
{
    FrameHeader header;
    header.type = FrameType::Request;
    header.payloadBytes = 12345;
    header.checksum = 0x0123456789abcdefULL;
    char raw[kFrameHeaderBytes];
    encodeFrameHeader(header, raw);

    FrameHeader decoded;
    std::string error;
    ASSERT_TRUE(decodeFrameHeader(raw, &decoded, &error)) << error;
    EXPECT_EQ(decoded.type, FrameType::Request);
    EXPECT_EQ(decoded.payloadBytes, 12345u);
    EXPECT_EQ(decoded.checksum, header.checksum);
}

TEST(ServeProtocolTest, FrameHeaderRejectsCorruption)
{
    FrameHeader header;
    header.type = FrameType::Ping;
    char good[kFrameHeaderBytes];
    encodeFrameHeader(header, good);

    const auto rejects = [&](std::size_t offset, char value) {
        char raw[kFrameHeaderBytes];
        std::memcpy(raw, good, sizeof raw);
        raw[offset] = value;
        FrameHeader out;
        std::string error;
        const bool ok = decodeFrameHeader(raw, &out, &error);
        EXPECT_FALSE(ok) << "offset " << offset << " accepted";
        if (!ok) {
            EXPECT_FALSE(error.empty());
        }
        return !ok;
    };
    EXPECT_TRUE(rejects(0, 'X'));   // Magic.
    EXPECT_TRUE(rejects(4, 99));    // Unknown version.
    EXPECT_TRUE(rejects(5, 0));     // Frame type 0 is invalid.
    EXPECT_TRUE(rejects(5, 42));    // Unknown frame type.
    EXPECT_TRUE(rejects(6, 1));     // Reserved u16 must be zero.
    EXPECT_TRUE(rejects(12, 1));    // Reserved u32 must be zero.
}

TEST(ServeProtocolTest, BuildFrameIsHeaderPlusPayload)
{
    const std::string payload = "hello ceerd";
    const std::string frame = buildFrame(FrameType::Error, payload);
    ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
    FrameHeader header;
    std::string error;
    ASSERT_TRUE(decodeFrameHeader(frame.data(), &header, &error));
    EXPECT_EQ(header.type, FrameType::Error);
    EXPECT_EQ(header.payloadBytes, payload.size());
    EXPECT_EQ(frame.substr(kFrameHeaderBytes), payload);
}

TEST(ServeProtocolTest, RequestCodecRoundTrips)
{
    RecommendRequest request;
    request.model = "resnet_152";
    request.batch = 64;
    request.datasetSamples = 987654;
    request.objective = "time";
    request.hourlyBudgetUsd = 12.5;
    request.hourlyToleranceUsd = 0.75;
    request.totalBudgetUsd = 4000.0;
    request.enforceGpuMemory = false;

    RecommendRequest decoded;
    std::string error;
    ASSERT_TRUE(decodeRecommendRequest(encodeRecommendRequest(request),
                                       &decoded, &error))
        << error;
    EXPECT_EQ(decoded.model, request.model);
    EXPECT_EQ(decoded.batch, request.batch);
    EXPECT_EQ(decoded.datasetSamples, request.datasetSamples);
    EXPECT_EQ(decoded.objective, request.objective);
    EXPECT_DOUBLE_EQ(decoded.hourlyBudgetUsd, request.hourlyBudgetUsd);
    EXPECT_DOUBLE_EQ(decoded.hourlyToleranceUsd,
                     request.hourlyToleranceUsd);
    EXPECT_DOUBLE_EQ(decoded.totalBudgetUsd, request.totalBudgetUsd);
    EXPECT_FALSE(decoded.enforceGpuMemory);

    // Defaults (infinite budgets) survive the wire too.
    RecommendRequest defaults;
    defaults.model = "alexnet";
    RecommendRequest decoded_defaults;
    ASSERT_TRUE(
        decodeRecommendRequest(encodeRecommendRequest(defaults),
                               &decoded_defaults, &error))
        << error;
    EXPECT_TRUE(std::isinf(decoded_defaults.hourlyBudgetUsd));
    EXPECT_TRUE(std::isinf(decoded_defaults.totalBudgetUsd));
    EXPECT_TRUE(decoded_defaults.enforceGpuMemory);
}

TEST(ServeProtocolTest, RequestCodecRejectsBadPayloads)
{
    RecommendRequest out;
    std::string error;
    EXPECT_FALSE(decodeRecommendRequest("not a CBF document", &out,
                                        &error));
    EXPECT_FALSE(error.empty());

    RecommendRequest bad_objective;
    bad_objective.model = "alexnet";
    bad_objective.objective = "speed";
    error.clear();
    EXPECT_FALSE(decodeRecommendRequest(
        encodeRecommendRequest(bad_objective), &out, &error));
    EXPECT_NE(error.find("objective"), std::string::npos);
}

TEST(ServeProtocolTest, ResponseCodecRoundTrips)
{
    RecommendResponse response;
    response.bestIndex = 1;
    response.instances = {"p2.xlarge", "p3.2xlarge"};
    response.hourlyUsd = {0.9, 3.06};
    response.hours = {12.0, 4.0};
    response.costUsd = {10.8, 12.24};
    response.iterationUs = {125000.0, 41000.0};
    response.feasible = {1, 1};

    RecommendResponse decoded;
    std::string error;
    ASSERT_TRUE(decodeRecommendResponse(
        encodeRecommendResponse(response), &decoded, &error))
        << error;
    EXPECT_EQ(decoded.bestIndex, 1);
    EXPECT_EQ(decoded.instances, response.instances);
    EXPECT_EQ(decoded.hourlyUsd, response.hourlyUsd);
    EXPECT_EQ(decoded.hours, response.hours);
    EXPECT_EQ(decoded.costUsd, response.costUsd);
    EXPECT_EQ(decoded.iterationUs, response.iterationUs);
    EXPECT_EQ(decoded.feasible, response.feasible);

    RecommendResponse garbage;
    EXPECT_FALSE(decodeRecommendResponse("junk", &garbage, &error));
}

TEST(ServeProtocolTest, ErrorAndReloadCodecsRoundTrip)
{
    ErrorInfo info{errc::kOverloaded, "queue full"};
    ErrorInfo decoded_info;
    std::string error;
    ASSERT_TRUE(
        decodeError(encodeError(info), &decoded_info, &error));
    EXPECT_EQ(decoded_info.code, errc::kOverloaded);
    EXPECT_EQ(decoded_info.message, "queue full");

    ReloadRequest reload{"/tmp/model.txt"};
    ReloadRequest decoded_reload;
    ASSERT_TRUE(decodeReloadRequest(encodeReloadRequest(reload),
                                    &decoded_reload, &error));
    EXPECT_EQ(decoded_reload.modelPath, reload.modelPath);

    ReloadDone done{7};
    ReloadDone decoded_done;
    ASSERT_TRUE(
        decodeReloadDone(encodeReloadDone(done), &decoded_done,
                         &error));
    EXPECT_EQ(decoded_done.generation, 7u);
}

TEST(ServeProtocolTest, GraphFingerprintDiscriminates)
{
    const std::uint64_t alexnet32 =
        graphFingerprint(models::buildModel("alexnet", 32));
    // Stable: rebuilding the identical graph reproduces the hash
    // (this is what makes it a valid plan-cache key).
    EXPECT_EQ(alexnet32,
              graphFingerprint(models::buildModel("alexnet", 32)));
    // Different model or batch size must change the plan key.
    EXPECT_NE(alexnet32,
              graphFingerprint(models::buildModel("vgg_11", 32)));
    EXPECT_NE(alexnet32,
              graphFingerprint(models::buildModel("alexnet", 64)));
}

// --- Loadgen math ------------------------------------------------------

TEST(ServeLoadgenTest, LatencyPercentileUsesNearestRank)
{
    std::vector<double> sorted;
    EXPECT_EQ(latencyPercentile(sorted, 0.5), 0.0);
    for (int i = 1; i <= 100; ++i)
        sorted.push_back(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(latencyPercentile(sorted, 0.50), 50.0);
    EXPECT_DOUBLE_EQ(latencyPercentile(sorted, 0.99), 99.0);
    EXPECT_DOUBLE_EQ(latencyPercentile(sorted, 0.999), 100.0);
    EXPECT_DOUBLE_EQ(latencyPercentile(sorted, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(latencyPercentile(sorted, 1.0), 100.0);
    // Out-of-range quantiles clamp instead of indexing out of bounds.
    EXPECT_DOUBLE_EQ(latencyPercentile(sorted, 2.0), 100.0);
}

// --- End-to-end server behaviour ---------------------------------------

TEST(ServeServerTest, RecommendMatchesInProcessRecommendByteForByte)
{
    auto server = startServer();
    ServeClient client;
    std::string error;
    ASSERT_TRUE(
        client.tryConnect("127.0.0.1", server->port(), 30000, &error))
        << error;

    RecommendRequest request;
    request.model = "vgg_19";
    RecommendResponse response;
    std::string raw;
    const CallOutcome outcome =
        client.recommend(request, &response, &raw);
    ASSERT_TRUE(outcome.ok) << outcome.errorMessage;
    EXPECT_EQ(raw, localReplyBytes(request));
    ASSERT_FALSE(response.instances.empty());
    ASSERT_GE(response.bestIndex, 0);
    ASSERT_LT(static_cast<std::size_t>(response.bestIndex),
              response.instances.size());
    EXPECT_EQ(response.hours.size(), response.instances.size());
    EXPECT_TRUE(response.feasible[static_cast<std::size_t>(
        response.bestIndex)]);

    // A second identical request rides the session plan cache and
    // must still produce the same bytes.
    std::string cached_raw;
    ASSERT_TRUE(client.recommend(request, &response, &cached_raw).ok);
    EXPECT_EQ(cached_raw, raw);
}

TEST(ServeServerTest, PingPongRoundTrips)
{
    auto server = startServer();
    ServeClient client;
    std::string error;
    ASSERT_TRUE(
        client.tryConnect("127.0.0.1", server->port(), 30000, &error))
        << error;
    EXPECT_TRUE(client.ping().ok);
    // The session survives a ping: a real request still works.
    RecommendRequest request;
    request.model = "alexnet";
    RecommendResponse response;
    EXPECT_TRUE(client.recommend(request, &response).ok);
}

TEST(ServeServerTest, UnknownModelIsRejectedWithTypedError)
{
    obs::ScopedEnable metrics(true);
    obs::resetMetrics();
    auto server = startServer();
    ServeClient client;
    std::string error;
    ASSERT_TRUE(
        client.tryConnect("127.0.0.1", server->port(), 30000, &error))
        << error;
    RecommendRequest request;
    request.model = "definitely_not_a_model";
    RecommendResponse response;
    const CallOutcome outcome = client.recommend(request, &response);
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.errorCode, errc::kUnknownModel);
    EXPECT_FALSE(client.connected()); // Fail closed.
    EXPECT_TRUE(waitForCounter("serve.rejected", 1));
}

TEST(ServeServerTest, InvalidBatchIsRejectedAsBadRequest)
{
    obs::ScopedEnable metrics(true);
    obs::resetMetrics();
    auto server = startServer();
    ServeClient client;
    std::string error;
    ASSERT_TRUE(
        client.tryConnect("127.0.0.1", server->port(), 30000, &error))
        << error;
    RecommendRequest request;
    request.model = "alexnet";
    request.batch = 0;
    RecommendResponse response;
    const CallOutcome outcome = client.recommend(request, &response);
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.errorCode, errc::kBadRequest);
    EXPECT_FALSE(client.connected());
    EXPECT_TRUE(waitForCounter("serve.rejected", 1));
}

TEST(ServeServerTest, MalformedFrameFailsClosed)
{
    obs::ScopedEnable metrics(true);
    obs::resetMetrics();
    auto server = startServer();
    Fd fd = rawConnect(server->port());
    ASSERT_TRUE(fd);
    const std::string garbage(kFrameHeaderBytes, 'X');
    std::string error;
    ASSERT_TRUE(
        sendAll(fd.get(), garbage.data(), garbage.size(), &error))
        << error;
    expectErrorThenEof(fd.get(), errc::kBadFrame);
    EXPECT_TRUE(waitForCounter("serve.rejected", 1));
}

TEST(ServeServerTest, OversizedPayloadIsRejectedFromTheHeaderAlone)
{
    obs::ScopedEnable metrics(true);
    obs::resetMetrics();
    auto server = startServer();
    Fd fd = rawConnect(server->port());
    ASSERT_TRUE(fd);
    // A hostile length field (~4 GiB) with no payload behind it: the
    // server must answer from the header alone, without ever trying
    // to buffer (or allocate) the claimed bytes.
    FrameHeader header;
    header.type = FrameType::Request;
    header.payloadBytes = 0xfffffff0u;
    char raw[kFrameHeaderBytes];
    encodeFrameHeader(header, raw);
    std::string error;
    ASSERT_TRUE(sendAll(fd.get(), raw, sizeof raw, &error)) << error;
    expectErrorThenEof(fd.get(), errc::kPayloadTooLarge);
    EXPECT_TRUE(waitForCounter("serve.rejected", 1));
}

TEST(ServeServerTest, ChecksumMismatchFailsClosed)
{
    obs::ScopedEnable metrics(true);
    obs::resetMetrics();
    auto server = startServer();
    Fd fd = rawConnect(server->port());
    ASSERT_TRUE(fd);
    RecommendRequest request;
    request.model = "alexnet";
    std::string frame =
        buildFrame(FrameType::Request, encodeRecommendRequest(request));
    frame.back() ^= 0x01; // Corrupt the payload; header keeps the
                          // checksum of the original bytes.
    std::string error;
    ASSERT_TRUE(sendAll(fd.get(), frame.data(), frame.size(), &error))
        << error;
    expectErrorThenEof(fd.get(), errc::kChecksumMismatch);
    EXPECT_TRUE(waitForCounter("serve.rejected", 1));
}

TEST(ServeServerTest, SlowLorisClientHitsReadTimeout)
{
    obs::ScopedEnable metrics(true);
    obs::resetMetrics();
    ServerOptions options;
    options.readTimeoutMs = 150;
    auto server = startServer(options);
    Fd fd = rawConnect(server->port());
    ASSERT_TRUE(fd);
    // Four bytes of a 24-byte header, then silence: the stall sweep
    // must disconnect us shortly after readTimeoutMs.
    std::string error;
    ASSERT_TRUE(sendAll(fd.get(), kFrameMagic, sizeof kFrameMagic,
                        &error))
        << error;
    expectErrorThenEof(fd.get(), errc::kReadTimeout);
    EXPECT_TRUE(waitForCounter("serve.rejected", 1));
}

TEST(ServeServerTest, FullAdmissionQueueRefusesWithBackpressure)
{
    obs::ScopedEnable metrics(true);
    obs::resetMetrics();
    ServerOptions options;
    options.maxQueueDepth = 0; // Deterministic overload: admit nothing.
    auto server = startServer(options);
    ServeClient client;
    std::string error;
    ASSERT_TRUE(
        client.tryConnect("127.0.0.1", server->port(), 30000, &error))
        << error;
    RecommendRequest request;
    request.model = "alexnet";
    RecommendResponse response;
    const CallOutcome outcome = client.recommend(request, &response);
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.errorCode, errc::kOverloaded);
    EXPECT_FALSE(client.connected()); // Refused, not silently dropped.
    EXPECT_TRUE(waitForCounter("serve.rejected", 1));
}

TEST(ServeServerTest, HotReloadBumpsGenerationAndKeepsReplies)
{
    auto server = startServer();
    EXPECT_EQ(server->generation(), 1u);
    ServeClient client;
    std::string error;
    ASSERT_TRUE(
        client.tryConnect("127.0.0.1", server->port(), 30000, &error))
        << error;

    RecommendRequest request;
    request.model = "alexnet";
    RecommendResponse response;
    std::string before;
    ASSERT_TRUE(client.recommend(request, &response, &before).ok);

    const std::string path = "serve_test_reload_model.tmp.txt";
    {
        std::ofstream out(path);
        cheapModel().save(out);
    }
    std::uint64_t generation = 0;
    const CallOutcome outcome = client.reload(path, &generation);
    std::remove(path.c_str());
    ASSERT_TRUE(outcome.ok) << outcome.errorMessage;
    EXPECT_EQ(generation, 2u);
    EXPECT_EQ(server->generation(), 2u);

    // The same model was reloaded, so the (lazily recompiled) plan
    // must reproduce the identical reply bytes on the same session.
    std::string after;
    ASSERT_TRUE(client.recommend(request, &response, &after).ok);
    EXPECT_EQ(after, before);

    // A failed reload keeps the old engine serving.
    EXPECT_FALSE(
        server->tryReload("/nonexistent/model/path.txt", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(server->generation(), 2u);
}

TEST(ServeServerTest, LoadgenDrivesTheServerCleanly)
{
    auto server = startServer();
    LoadgenOptions options;
    options.port = server->port();
    options.connections = 2;
    options.seconds = 0.3;
    RecommendRequest request;
    request.model = "alexnet";
    options.requests = {request};
    LoadgenResult result;
    std::string error;
    ASSERT_TRUE(runLoadgen(options, &result, &error)) << error;
    EXPECT_GT(result.succeeded, 0);
    EXPECT_EQ(result.transportErrors, 0);
    EXPECT_EQ(result.serverErrors, 0);
    EXPECT_GT(result.p50Us, 0.0);
    EXPECT_LE(result.p50Us, result.p999Us);
    EXPECT_GT(result.achievedQps, 0.0);
    server->stop();
    server->stop(); // Idempotent.
}

// --- Plan cache --------------------------------------------------------

/** A PlanEntry whose plan pointer carries no weight (the cache never
 *  dereferences it); @p bytes drives the accounting. */
PlanEntry
fakeEntry(std::uint64_t fingerprint, std::uint64_t generation,
          std::size_t bytes = 64)
{
    PlanEntry entry;
    entry.fingerprint = fingerprint;
    entry.generation = generation;
    entry.bytes = bytes;
    return entry;
}

TEST(PlanCacheTest, AccountsHitsAndMissesAcrossCallers)
{
    PlanCache cache(4, 1);
    int compiles = 0;
    const auto compile = [&] {
        ++compiles;
        return fakeEntry(7, 1);
    };

    // Cold: tryGet declines without charging a miss; getOrCompile
    // compiles and charges exactly one.
    EXPECT_EQ(cache.tryGet(7, 1), nullptr);
    EXPECT_EQ(cache.stats().misses, 0u);
    const auto first = cache.getOrCompile(7, 1, compile);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(compiles, 1);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().entries, 1u);

    // Warm: both paths hit and share the same pinned entry —
    // a second "session" asking for the same graph compiles nothing.
    const auto hit = cache.tryGet(7, 1);
    EXPECT_EQ(hit.get(), first.get());
    EXPECT_EQ(cache.getOrCompile(7, 1, compile).get(), first.get());
    EXPECT_EQ(compiles, 1);
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.stats().bytes, 64u);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsedUnderTinyCap)
{
    PlanCache cache(2, 1);
    const auto compileFor = [](std::uint64_t fp) {
        return [fp] { return fakeEntry(fp, 1); };
    };
    cache.getOrCompile(1, 1, compileFor(1));
    cache.getOrCompile(2, 1, compileFor(2));
    // Touch 1 so 2 becomes the LRU victim.
    EXPECT_NE(cache.tryGet(1, 1), nullptr);
    cache.getOrCompile(3, 1, compileFor(3));

    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().entries, 2u);
    EXPECT_EQ(cache.tryGet(2, 1), nullptr);
    EXPECT_NE(cache.tryGet(1, 1), nullptr);
    EXPECT_NE(cache.tryGet(3, 1), nullptr);
}

TEST(PlanCacheTest, StaleGenerationMissesButKeepsPinnedEntries)
{
    PlanCache cache(4, 1);
    int compiles = 0;
    const auto old_entry = cache.getOrCompile(5, 1, [&] {
        ++compiles;
        return fakeEntry(5, 1);
    });

    // After a hot reload (generation 2) the old entry is invisible...
    EXPECT_EQ(cache.tryGet(5, 2), nullptr);
    const auto fresh = cache.getOrCompile(5, 2, [&] {
        ++compiles;
        return fakeEntry(5, 2);
    });
    EXPECT_EQ(compiles, 2);
    EXPECT_EQ(fresh->generation, 2u);

    // ...but an in-flight request that pinned it before the reload
    // still holds a valid generation-1 entry.
    EXPECT_EQ(old_entry->generation, 1u);
    EXPECT_EQ(old_entry->fingerprint, 5u);
}

TEST(PlanCacheTest, ConcurrentRequestsCompileExactlyOnce)
{
    PlanCache cache(8, 4);
    std::atomic<int> compiles{0};
    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const PlanEntry>> results(kThreads);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&cache, &compiles, &results, i] {
            results[static_cast<std::size_t>(i)] =
                cache.getOrCompile(42, 1, [&compiles] {
                    compiles.fetch_add(1);
                    // Widen the race window: every other thread must
                    // wait on the shard cv, not re-compile.
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(20));
                    return fakeEntry(42, 1);
                });
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(compiles.load(), 1);
    EXPECT_EQ(cache.stats().misses, 1u);
    for (const auto &result : results) {
        ASSERT_NE(result, nullptr);
        EXPECT_EQ(result.get(), results[0].get());
    }
}

TEST(ServeServerTest, PlanCacheIsSharedAcrossSessions)
{
    auto server = startServer();
    RecommendRequest request;
    request.model = "alexnet";

    // Two independent connections ask for the same graph: the second
    // session must reuse the first session's compiled plan.
    for (int i = 0; i < 2; ++i) {
        ServeClient client;
        std::string error;
        ASSERT_TRUE(client.tryConnect("127.0.0.1", server->port(),
                                      30000, &error))
            << error;
        RecommendResponse response;
        ASSERT_TRUE(client.recommend(request, &response).ok);
        client.close();
    }

    const PlanCache::Stats stats = server->planCacheStats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_GE(stats.hits, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

// --- Multi-reactor -----------------------------------------------------

/** Byte-identity across several concurrent connections against
 *  @p options (the caller picks reactor count and accept mode). */
void
expectIdenticalRepliesAcrossConnections(ServerOptions options)
{
    auto server = startServer(options);
    RecommendRequest request;
    request.model = "alexnet";
    const std::string expected = localReplyBytes(request);

    // More connections than reactors so every reactor serves at least
    // one session regardless of how accepts are sharded.
    constexpr int kConnections = 5;
    std::vector<std::unique_ptr<ServeClient>> clients;
    for (int i = 0; i < kConnections; ++i) {
        auto client = std::make_unique<ServeClient>();
        std::string error;
        ASSERT_TRUE(client->tryConnect("127.0.0.1", server->port(),
                                       30000, &error))
            << error;
        clients.push_back(std::move(client));
    }
    for (auto &client : clients) {
        RecommendResponse response;
        std::string raw;
        ASSERT_TRUE(client->recommend(request, &response, &raw).ok);
        EXPECT_EQ(raw, expected);
    }
    server->stop();
}

TEST(ServeServerTest, MultiReactorRepliesMatchInProcessRecommend)
{
    ServerOptions options;
    options.reactors = 2;
    expectIdenticalRepliesAcrossConnections(options);
}

TEST(ServeServerTest, SingleListenerFallbackHandsSessionsAcross)
{
    // Forcing reusePort off exercises the round-robin fd handoff from
    // the accepting reactor to its peers' inboxes.
    ServerOptions options;
    options.reactors = 2;
    options.reusePort = false;
    expectIdenticalRepliesAcrossConnections(options);
}

TEST(ServeServerTest, MultiReactorHotReloadKeepsReplies)
{
    ServerOptions options;
    options.reactors = 2;
    auto server = startServer(options);
    RecommendRequest request;
    request.model = "alexnet";

    ServeClient a;
    ServeClient b;
    std::string error;
    ASSERT_TRUE(
        a.tryConnect("127.0.0.1", server->port(), 30000, &error))
        << error;
    ASSERT_TRUE(
        b.tryConnect("127.0.0.1", server->port(), 30000, &error))
        << error;
    RecommendResponse response;
    std::string before_a;
    std::string before_b;
    ASSERT_TRUE(a.recommend(request, &response, &before_a).ok);
    ASSERT_TRUE(b.recommend(request, &response, &before_b).ok);
    EXPECT_EQ(before_a, before_b);

    const std::string path = "serve_test_reactor_reload.tmp.txt";
    {
        std::ofstream out(path);
        cheapModel().save(out);
    }
    std::uint64_t generation = 0;
    const CallOutcome outcome = a.reload(path, &generation);
    std::remove(path.c_str());
    ASSERT_TRUE(outcome.ok) << outcome.errorMessage;
    EXPECT_EQ(generation, 2u);

    // Both sessions — including the one on the reactor that did NOT
    // process the reload — must serve identical bytes afterwards.
    std::string after_a;
    std::string after_b;
    ASSERT_TRUE(a.recommend(request, &response, &after_a).ok);
    ASSERT_TRUE(b.recommend(request, &response, &after_b).ok);
    EXPECT_EQ(after_a, before_a);
    EXPECT_EQ(after_b, before_b);
}

TEST(ServeServerTest, MultiReactorStopsCleanlyUnderLoad)
{
    ServerOptions options;
    options.reactors = 2;
    auto server = startServer(options);
    LoadgenOptions load;
    load.port = server->port();
    load.connections = 3;
    load.seconds = 0.3;
    RecommendRequest request;
    request.model = "alexnet";
    load.requests = {request};
    LoadgenResult result;
    std::string error;
    ASSERT_TRUE(runLoadgen(load, &result, &error)) << error;
    EXPECT_GT(result.succeeded, 0);
    EXPECT_EQ(result.transportErrors, 0);
    server->stop();
    server->stop(); // Idempotent with reactors too.
}

// --- Percentile resolvability ------------------------------------------

TEST(ServeLoadgenTest, PercentileResolvableNeedsEnoughSamples)
{
    // n * (1 - q) >= 1: the sample must be able to place at least one
    // observation above the quantile.
    EXPECT_FALSE(percentileResolvable(0, 0.50));
    EXPECT_TRUE(percentileResolvable(2, 0.50));
    EXPECT_TRUE(percentileResolvable(76, 0.90));
    // The BENCH_serve regression: 76 samples cannot resolve p99, so
    // p99 == p999 == max was a reporting artifact, not a latency fact.
    EXPECT_FALSE(percentileResolvable(76, 0.99));
    EXPECT_FALSE(percentileResolvable(76, 0.999));
    EXPECT_TRUE(percentileResolvable(100, 0.99));
    EXPECT_FALSE(percentileResolvable(999, 0.999));
    EXPECT_TRUE(percentileResolvable(1000, 0.999));
}

TEST(ServeLoadgenTest, WarmupIsExcludedFromTimedPercentiles)
{
    auto server = startServer();
    LoadgenOptions options;
    options.port = server->port();
    options.connections = 1;
    options.seconds = 0.2;
    options.warmupRequests = 3;
    RecommendRequest request;
    request.model = "alexnet";
    options.requests = {request};
    LoadgenResult result;
    std::string error;
    ASSERT_TRUE(runLoadgen(options, &result, &error)) << error;

    EXPECT_EQ(result.warmupRequests, 3);
    EXPECT_GT(result.warmupMeanUs, 0.0);
    EXPECT_GE(result.warmupMaxUs, result.warmupMeanUs);
    // The timed phase reports only its own samples: the cold-start
    // compile landed in the warmup fields, not the percentile pool.
    EXPECT_EQ(static_cast<std::int64_t>(result.latenciesUs.size()),
              result.succeeded);
}

} // namespace
} // namespace serve
} // namespace ceer
