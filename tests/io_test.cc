/**
 * @file
 * Tests for the CBF columnar binary format (src/io/cbf.h): xxhash64
 * reference vectors, builder round-trips through all three load paths
 * (owned parse, streaming read, mmap), the variable-length column
 * helpers, and the corruption matrix — every malformed byte must be
 * rejected with byte-offset context, outputs untouched. Container
 * codec failure modes (wrong schema, semantic garbage behind valid
 * checksums) are exercised through ProfileDataset and
 * InstanceCatalog; the happy-path container round-trips live in
 * roundtrip_test.cc.
 */

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cloud/instances.h"
#include "core/ceer_model.h"
#include "io/cbf.h"
#include "obs/metrics.h"
#include "profile/profiler.h"

namespace ceer {
namespace io {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "ceer-io-" + name;
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
    ASSERT_TRUE(out.good());
}

std::uint32_t
loadU32At(const std::string &image, std::size_t offset)
{
    std::uint32_t v;
    std::memcpy(&v, image.data() + offset, sizeof v);
    return v;
}

std::uint64_t
loadU64At(const std::string &image, std::size_t offset)
{
    std::uint64_t v;
    std::memcpy(&v, image.data() + offset, sizeof v);
    return v;
}

void
storeU64At(std::string *image, std::size_t offset, std::uint64_t v)
{
    std::memcpy(image->data() + offset, &v, sizeof v);
}

void
storeU32At(std::string *image, std::size_t offset, std::uint32_t v)
{
    std::memcpy(image->data() + offset, &v, sizeof v);
}

constexpr std::size_t kHeader = 32;
constexpr std::size_t kEntry = 72;

/** Recomputes the column-table checksum after a table mutation. */
void
fixTableHash(std::string *image)
{
    const std::uint64_t table_bytes =
        std::uint64_t{loadU32At(*image, 12)} * kEntry;
    storeU64At(image, 24, xxhash64(image->data() + kHeader, table_bytes));
}

/** Recomputes column @p index's payload checksum after a payload
    mutation (call fixTableHash afterwards). */
void
fixColumnChecksum(std::string *image, std::size_t index)
{
    const std::size_t entry = kHeader + index * kEntry;
    const std::uint64_t offset = loadU64At(*image, entry + 48);
    const std::uint64_t length = loadU64At(*image, entry + 56);
    storeU64At(image, entry + 64,
               xxhash64(image->data() + offset, length));
}

/** Index of the named column in @p file, or aborts the test. */
std::size_t
columnIndex(const CbfFile &file, const std::string &name)
{
    for (std::size_t i = 0; i < file.columns().size(); ++i)
        if (file.columns()[i].name == name)
            return i;
    ADD_FAILURE() << "no column " << name;
    return 0;
}

TEST(XxHashTest, MatchesPublishedReferenceVectors)
{
    // The four vectors from the xxHash reference documentation; the
    // local implementation must agree before any checksum means
    // anything.
    EXPECT_EQ(xxhash64("", 0), 0xEF46DB3751D8E999ull);
    EXPECT_EQ(xxhash64("abc", 3), 0x44BC2CF5AD770999ull);
    const std::string spam = "Nobody inspects the spammish repetition";
    EXPECT_EQ(xxhash64(spam.data(), spam.size()), 0xFBCEA83C8A378BF1ull);
    EXPECT_EQ(xxhash64("xxhash", 6, 20141025), 0xB559B98D844E0635ull);
}

TEST(XxHashTest, CoversEveryTailLength)
{
    // The algorithm has distinct 8/4/1-byte tail steps; walk every
    // length 0..64 and require distinct, deterministic digests.
    std::string data;
    std::vector<std::uint64_t> seen;
    for (std::size_t n = 0; n <= 64; ++n) {
        const std::uint64_t h = xxhash64(data.data(), data.size());
        EXPECT_EQ(h, xxhash64(data.data(), data.size()));
        for (std::uint64_t prior : seen)
            EXPECT_NE(h, prior) << "collision at length " << n;
        seen.push_back(h);
        data.push_back(static_cast<char>('a' + (n % 26)));
    }
}

/** A small file exercising every dtype, including an empty column and
    a blob with an embedded NUL. */
CbfBuilder
sampleBuilder()
{
    CbfBuilder builder;
    builder.addU8("flags", {1, 0, 1});
    builder.addF64("values", {1.5, -2.25, 1e300, -0.0});
    builder.addU64("counts", {7, 0xFFFFFFFFFFFFFFFFull});
    builder.addI64("deltas", {-1, 2});
    builder.addF64("empty", {});
    builder.addBytes("blob", std::string("hel\0lo", 6));
    return builder;
}

void
expectSampleContents(const CbfFile &file)
{
    ASSERT_EQ(file.columns().size(), 6u);
    EXPECT_EQ(file.columns()[0].name, "flags");
    EXPECT_EQ(file.columns()[1].name, "values");

    std::string error;
    const std::uint8_t *flags = nullptr;
    const double *values = nullptr;
    const std::uint64_t *counts = nullptr;
    const std::int64_t *deltas = nullptr;
    const double *empty = nullptr;
    const char *blob = nullptr;
    std::size_t n = 0;
    ASSERT_TRUE(file.u8("flags", &flags, &n, &error)) << error;
    ASSERT_EQ(n, 3u);
    EXPECT_EQ(flags[0], 1u);
    EXPECT_EQ(flags[1], 0u);
    ASSERT_TRUE(file.f64("values", &values, &n, &error)) << error;
    ASSERT_EQ(n, 4u);
    EXPECT_EQ(values[0], 1.5);
    EXPECT_EQ(values[2], 1e300);
    EXPECT_TRUE(std::signbit(values[3]));
    ASSERT_TRUE(file.u64("counts", &counts, &n, &error)) << error;
    ASSERT_EQ(n, 2u);
    EXPECT_EQ(counts[1], 0xFFFFFFFFFFFFFFFFull);
    ASSERT_TRUE(file.i64("deltas", &deltas, &n, &error)) << error;
    ASSERT_EQ(n, 2u);
    EXPECT_EQ(deltas[0], -1);
    ASSERT_TRUE(file.f64("empty", &empty, &n, &error)) << error;
    EXPECT_EQ(n, 0u);
    ASSERT_TRUE(file.bytes("blob", &blob, &n, &error)) << error;
    ASSERT_EQ(n, 6u);
    EXPECT_EQ(std::string(blob, n), std::string("hel\0lo", 6));
}

TEST(CbfTest, BuilderRoundTripsThroughAllThreeLoadPaths)
{
    const CbfBuilder builder = sampleBuilder();
    const std::string image = builder.build();

    CbfFile parsed;
    std::string error;
    ASSERT_TRUE(CbfFile::tryParse(image, &parsed, &error)) << error;
    EXPECT_FALSE(parsed.mapped());
    EXPECT_EQ(parsed.size(), image.size());
    expectSampleContents(parsed);

    const std::string path = tempPath("roundtrip.cbf");
    ASSERT_TRUE(builder.tryWriteFile(path, &error)) << error;

    CbfFile streamed;
    ASSERT_TRUE(CbfFile::tryLoad(path, &streamed, &error)) << error;
    EXPECT_FALSE(streamed.mapped());
    expectSampleContents(streamed);

    CbfFile mapped;
    ASSERT_TRUE(CbfFile::tryMap(path, &mapped, &error)) << error;
    EXPECT_TRUE(mapped.mapped());
    EXPECT_EQ(mapped.size(), image.size());
    expectSampleContents(mapped);

    // Re-serializing the parsed columns reproduces the file byte for
    // byte (column order is preserved end to end).
    CbfBuilder again;
    again.addU8("flags", {1, 0, 1});
    again.addF64("values", {1.5, -2.25, 1e300, -0.0});
    again.addU64("counts", {7, 0xFFFFFFFFFFFFFFFFull});
    again.addI64("deltas", {-1, 2});
    again.addF64("empty", {});
    again.addBytes("blob", std::string("hel\0lo", 6));
    EXPECT_EQ(again.build(), image);
}

TEST(CbfTest, AccessorsRejectMissingAndMistypedColumns)
{
    CbfFile file;
    std::string error;
    ASSERT_TRUE(CbfFile::tryParse(sampleBuilder().build(), &file, &error));

    const double *f = nullptr;
    std::size_t n = 0;
    EXPECT_FALSE(file.f64("nope", &f, &n, &error));
    EXPECT_NE(error.find("missing column 'nope'"), std::string::npos)
        << error;
    EXPECT_FALSE(file.f64("flags", &f, &n, &error));
    EXPECT_NE(error.find("dtype"), std::string::npos) << error;
    EXPECT_EQ(file.find("nope"), nullptr);
    ASSERT_NE(file.find("flags"), nullptr);
    EXPECT_EQ(file.find("flags")->count, 3u);
}

TEST(CbfTest, StringAndF64ListColumnsRoundTrip)
{
    // Hostile strings are fine in CBF: the blob+offsets encoding never
    // inspects the payload (unlike CSV, which must quote them).
    const std::vector<std::string> strings = {
        "plain", "", "comma,quote\"", "new\nline",
        std::string("nul\0byte", 8), "trailing ",
    };
    const std::vector<std::vector<double>> lists = {
        {1.0, 2.5}, {}, {-0.0, 1e-300, 1e300}, {42.0},
    };
    CbfBuilder builder;
    addStringColumn(&builder, "names", strings);
    addF64ListColumn(&builder, "series", lists);

    CbfFile file;
    std::string error;
    ASSERT_TRUE(CbfFile::tryParse(builder.build(), &file, &error))
        << error;
    std::vector<std::string> names;
    std::vector<std::vector<double>> series;
    ASSERT_TRUE(readStringColumn(file, "names", &names, &error)) << error;
    ASSERT_TRUE(readF64ListColumn(file, "series", &series, &error))
        << error;
    EXPECT_EQ(names, strings);
    ASSERT_EQ(series.size(), lists.size());
    for (std::size_t i = 0; i < lists.size(); ++i)
        EXPECT_EQ(series[i], lists[i]) << "list " << i;
}

TEST(CbfTest, CorruptOffsetVectorsAreRejectedWithColumnContext)
{
    CbfBuilder builder;
    addStringColumn(&builder, "names", {"a", "bc"});
    std::string image = builder.build();

    // The offsets column ("names.off") follows the blob; make its last
    // offset overshoot the blob and re-checksum so only the semantic
    // validation can catch it.
    CbfFile probe;
    std::string error;
    ASSERT_TRUE(CbfFile::tryParse(image, &probe, &error)) << error;
    const std::size_t off_index = columnIndex(probe, "names.off");
    const std::uint64_t off_col =
        loadU64At(image, kHeader + off_index * kEntry + 48);
    storeU64At(&image, off_col + 2 * 8, 999); // offsets[2], the end.
    fixColumnChecksum(&image, off_index);
    fixTableHash(&image);

    CbfFile reparsed;
    ASSERT_TRUE(CbfFile::tryParse(image, &reparsed, &error)) << error;
    std::vector<std::string> names;
    EXPECT_FALSE(readStringColumn(reparsed, "names", &names, &error));
    EXPECT_NE(error.find("names"), std::string::npos) << error;
    EXPECT_TRUE(names.empty());
}

struct Corruption
{
    const char *name;
    std::string image;        ///< The corrupted bytes.
    const char *expect;       ///< Required error substring.
};

/** The corruption matrix over a valid sample image. */
std::vector<Corruption>
corruptions()
{
    const std::string good = sampleBuilder().build();
    std::vector<Corruption> out;

    out.push_back({"truncated header", good.substr(0, 10),
                   "truncated file"});
    {
        std::string bad = good;
        bad[0] ^= 0x40;
        out.push_back({"bad magic", bad, "bad magic at offset 0"});
    }
    {
        std::string bad = good;
        bad[8] ^= 0x02; // version 1 -> 3.
        out.push_back(
            {"wrong version", bad, "unsupported format version 3"});
    }
    out.push_back({"truncated tail", good.substr(0, good.size() - 3),
                   "declares"});
    {
        std::string bad = good;
        bad[kHeader + 3] ^= 0x01; // inside entry 0's name.
        out.push_back({"flipped table bit", bad,
                       "column table checksum mismatch"});
    }
    {
        std::string bad = good;
        bad.back() ^= 0x01; // last payload byte ("blob" has no padding).
        out.push_back({"flipped payload bit", bad,
                       "payload checksum mismatch"});
    }
    {
        // Stretch column 0 ("flags", u8 so count == length stays
        // consistent) just past EOF; small enough to dodge the
        // implausible-count guard, so only the bounds check objects.
        std::string bad = good;
        const std::uint64_t stretch = bad.size() - 1;
        storeU64At(&bad, kHeader + 40, stretch);
        storeU64At(&bad, kHeader + 56, stretch);
        fixTableHash(&bad);
        out.push_back({"short section", bad, "short section"});
    }
    {
        // Shift column 1 ("values", f64) off 8-byte alignment; the
        // aligned-access rule is a validation failure, not UB.
        std::string bad = good;
        const std::size_t entry = kHeader + 1 * kEntry;
        storeU64At(&bad, entry + 48, loadU64At(bad, entry + 48) + 1);
        fixTableHash(&bad);
        out.push_back({"misaligned section", bad, "misaligned section"});
    }
    {
        std::string bad = good;
        bad[kHeader + 32] = 9; // entry 0 dtype.
        fixTableHash(&bad);
        out.push_back({"bad dtype", bad, "bad dtype 9"});
    }
    {
        std::string bad = good;
        std::memset(bad.data() + kHeader, 'x', 32); // entry 0 name,
        fixTableHash(&bad);                         // unterminated.
        out.push_back({"unterminated name", bad, "unterminated name"});
    }
    {
        std::string bad = good;
        bad[kHeader] = '\0'; // entry 0 name emptied.
        fixTableHash(&bad);
        out.push_back({"empty name", bad, "empty name"});
    }
    {
        // Entry 1 renamed to entry 0's name ("flags").
        std::string bad = good;
        std::memcpy(bad.data() + kHeader + kEntry, bad.data() + kHeader,
                    32);
        fixTableHash(&bad);
        out.push_back({"duplicate name", bad, "duplicate name"});
    }
    {
        std::string bad = good;
        storeU32At(&bad, 12, (1u << 20) + 1);
        out.push_back({"implausible column count", bad,
                       "implausible column count"});
    }
    {
        // A plausible column count the file is far too small to hold.
        std::string bad = good;
        storeU32At(&bad, 12, 1000);
        out.push_back({"truncated column table", bad,
                       "truncated column table at offset 32"});
    }
    {
        // Entry 2 ("counts", u64): count no longer matches length.
        std::string bad = good;
        const std::size_t entry = kHeader + 2 * kEntry;
        storeU64At(&bad, entry + 40, loadU64At(bad, entry + 40) + 1);
        fixTableHash(&bad);
        out.push_back({"count/length mismatch", bad,
                       "does not match 3 u64 elements"});
    }
    return out;
}

TEST(CbfTest, CorruptionMatrixRejectsParseLoadAndMapAlike)
{
    const std::string good = sampleBuilder().build();
    for (const Corruption &corruption : corruptions()) {
        // Output stays untouched across a failed parse: preload the
        // target with valid contents and require them intact after.
        CbfFile out;
        std::string error;
        ASSERT_TRUE(CbfFile::tryParse(good, &out, &error)) << error;
        EXPECT_FALSE(CbfFile::tryParse(corruption.image, &out, &error))
            << corruption.name;
        EXPECT_NE(error.find(corruption.expect), std::string::npos)
            << corruption.name << ": " << error;
        EXPECT_NE(error.find("offset"), std::string::npos)
            << corruption.name
            << " error lacks byte-offset context: " << error;
        expectSampleContents(out); // untouched

        // Both file-backed paths agree with the in-memory verdict.
        const std::string path = tempPath("corrupt.cbf");
        writeFile(path, corruption.image);
        CbfFile streamed, mapped;
        std::string load_error, map_error;
        EXPECT_FALSE(CbfFile::tryLoad(path, &streamed, &load_error))
            << corruption.name;
        EXPECT_NE(load_error.find(corruption.expect), std::string::npos)
            << corruption.name << ": " << load_error;
        EXPECT_FALSE(CbfFile::tryMap(path, &mapped, &map_error))
            << corruption.name;
        EXPECT_NE(map_error.find(corruption.expect), std::string::npos)
            << corruption.name << ": " << map_error;
    }
}

TEST(CbfTest, DtypeNamesAndSizesAreStable)
{
    // These are on-disk contract values; renaming or resizing a dtype
    // is a format change and must bump the version instead.
    EXPECT_EQ(dtypeName(DType::F64), "f64");
    EXPECT_EQ(dtypeName(DType::U64), "u64");
    EXPECT_EQ(dtypeName(DType::I64), "i64");
    EXPECT_EQ(dtypeName(DType::U8), "u8");
    EXPECT_EQ(dtypeName(DType::Bytes), "bytes");
    EXPECT_EQ(dtypeSize(DType::F64), 8u);
    EXPECT_EQ(dtypeSize(DType::U64), 8u);
    EXPECT_EQ(dtypeSize(DType::I64), 8u);
    EXPECT_EQ(dtypeSize(DType::U8), 1u);
    EXPECT_EQ(dtypeSize(DType::Bytes), 1u);
}

TEST(CbfTest, MovedFromFilesTransferTheirContents)
{
    const std::string path = tempPath("move.cbf");
    std::string error;
    ASSERT_TRUE(sampleBuilder().tryWriteFile(path, &error)) << error;
    CbfFile mapped;
    ASSERT_TRUE(CbfFile::tryMap(path, &mapped, &error)) << error;

    CbfFile moved(std::move(mapped));
    EXPECT_TRUE(moved.mapped());
    expectSampleContents(moved);

    CbfFile assigned;
    assigned = std::move(moved);
    EXPECT_TRUE(assigned.mapped());
    expectSampleContents(assigned);
}

TEST(CbfTest, WriteFailuresAreReportedNotFatal)
{
    std::string error;
    EXPECT_FALSE(sampleBuilder().tryWriteFile(
        tempPath("no-such-dir") + "/x.cbf", &error));
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;

    CbfFile file;
    EXPECT_FALSE(
        CbfFile::tryLoad(tempPath("absent.cbf"), &file, &error));
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
    EXPECT_FALSE(
        CbfFile::tryMap(tempPath("absent.cbf"), &file, &error));
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(CbfTest, BuilderRejectsBadColumnNames)
{
    EXPECT_DEATH(
        {
            CbfBuilder builder;
            builder.addU8(std::string(32, 'n'), {1});
        },
        "1-31 bytes");
    EXPECT_DEATH(
        {
            CbfBuilder builder;
            builder.addU8("twin", {1});
            builder.addF64("twin", {2.0});
        },
        "duplicate column");
}

TEST(CbfTest, OffsetVectorReadersRejectInconsistentShapes)
{
    // Hand-build offset vectors the helpers would never write; the
    // readers must reject each shape with column context.
    CbfBuilder builder;
    builder.addBytes("no_off", "abc");
    builder.addBytes("short_off", "abc");
    builder.addU64("short_off.off", {0, 1, 2}); // last != blob size
    builder.addF64("disorder", {1.0, 2.0, 3.0});
    builder.addU64("disorder.off", {0, 3, 1, 3}); // not monotonic
    CbfFile file;
    std::string error;
    ASSERT_TRUE(CbfFile::tryParse(builder.build(), &file, &error))
        << error;

    std::vector<std::string> strings{"sentinel"};
    EXPECT_FALSE(readStringColumn(file, "no_off", &strings, &error));
    EXPECT_NE(error.find("missing column 'no_off.off'"),
              std::string::npos)
        << error;
    EXPECT_FALSE(readStringColumn(file, "short_off", &strings, &error));
    EXPECT_NE(error.find("short_off.off"), std::string::npos) << error;
    EXPECT_NE(error.find("bad offset vector"), std::string::npos)
        << error;
    ASSERT_EQ(strings.size(), 1u); // untouched through both failures
    EXPECT_EQ(strings[0], "sentinel");

    std::vector<std::vector<double>> lists;
    EXPECT_FALSE(readF64ListColumn(file, "disorder", &lists, &error));
    EXPECT_NE(error.find("out of order"), std::string::npos) << error;
    EXPECT_TRUE(lists.empty());
}

TEST(CbfTest, ChecksumFailuresTickTheCounter)
{
    obs::ScopedEnable on(true);
    obs::resetMetrics();
    std::string bad = sampleBuilder().build();
    bad.back() ^= 0x01;
    CbfFile out;
    std::string error;
    EXPECT_FALSE(CbfFile::tryParse(bad, &out, &error));
    EXPECT_GE(obs::snapshotMetrics().counterValue(
                  "io.checksum_failures"), 1u);
}

TEST(CbfTest, SniffFileSeparatesDialects)
{
    const std::string cbf_path = tempPath("sniff.cbf");
    const std::string csv_path = tempPath("sniff.csv");
    const std::string stub_path = tempPath("sniff.stub");
    std::string error;
    ASSERT_TRUE(sampleBuilder().tryWriteFile(cbf_path, &error)) << error;
    writeFile(csv_path, "kind,model,gpu\n");
    writeFile(stub_path, "x"); // shorter than the magic.

    FileFormat format = FileFormat::Text;
    ASSERT_TRUE(sniffFile(cbf_path, &format, &error)) << error;
    EXPECT_EQ(format, FileFormat::Cbf);
    ASSERT_TRUE(sniffFile(csv_path, &format, &error)) << error;
    EXPECT_EQ(format, FileFormat::Text);
    ASSERT_TRUE(sniffFile(stub_path, &format, &error)) << error;
    EXPECT_EQ(format, FileFormat::Text);
    EXPECT_FALSE(
        sniffFile(tempPath("does-not-exist"), &format, &error));
}

// ---------------------------------------------------------------------
// Container-level rejection: valid CBF envelope, wrong or nonsensical
// contents. The loaders must fail with context and leave outputs
// untouched.

/** One-op dataset used as both fixture and untouched-sentinel. */
profile::ProfileDataset
tinyDataset(const std::string &model_name)
{
    profile::ProfileDataset dataset;
    profile::OpProfile op;
    op.model = model_name;
    op.gpu = hw::GpuModel::V100;
    op.op = graph::OpType::Conv2D;
    op.occurrences = 2;
    op.features = {1.0, 2.0, 3.0};
    op.timeUs.add(5.0);
    op.timeUs.add(7.0);
    op.samples.add(5.0);
    op.samples.add(7.0);
    op.samples.add(6.0);
    std::vector<profile::OpProfile> ops;
    ops.push_back(std::move(op));
    dataset.add(std::move(ops));
    return dataset;
}

std::string
datasetCbf(const profile::ProfileDataset &dataset)
{
    std::ostringstream out;
    dataset.saveCbf(out);
    return out.str();
}

TEST(CbfContainerTest, WrongSchemaIsRejectedAndOutputUntouched)
{
    std::ostringstream catalog_bytes;
    cloud::InstanceCatalog::awsOnDemand().saveCbf(catalog_bytes);
    CbfFile catalog_file;
    std::string error;
    ASSERT_TRUE(CbfFile::tryParse(catalog_bytes.str(), &catalog_file,
                                  &error))
        << error;

    profile::ProfileDataset dataset = tinyDataset("sentinel");
    EXPECT_FALSE(profile::ProfileDataset::tryLoadCbf(
        catalog_file, &dataset, &error));
    EXPECT_NE(error.find("ceer.profiles.v1"), std::string::npos)
        << error;
    ASSERT_EQ(dataset.ops().size(), 1u);
    EXPECT_EQ(dataset.ops()[0].model, "sentinel"); // untouched

    core::CeerModel model;
    EXPECT_FALSE(
        core::CeerModel::tryLoadCbf(catalog_file, &model, &error));
    EXPECT_NE(error.find("ceer.model.v1"), std::string::npos) << error;

    CbfFile profiles_file;
    ASSERT_TRUE(CbfFile::tryParse(datasetCbf(tinyDataset("x")),
                                  &profiles_file, &error))
        << error;
    cloud::InstanceCatalog catalog;
    EXPECT_FALSE(cloud::InstanceCatalog::tryLoadCbf(profiles_file,
                                                    &catalog, &error));
    EXPECT_NE(error.find("ceer.catalog.v1"), std::string::npos) << error;
}

TEST(CbfContainerTest, SemanticGarbageBehindValidChecksumsIsRejected)
{
    const std::string good = datasetCbf(tinyDataset("alexnet"));
    CbfFile probe;
    std::string error;
    ASSERT_TRUE(CbfFile::tryParse(good, &probe, &error)) << error;

    // An inconsistent sample reservoir: claim 5 offered while only 3
    // samples are retained (with capacity far above both).
    {
        std::string bad = good;
        const std::size_t index = columnIndex(probe, "op.sample_offered");
        const std::uint64_t offset =
            loadU64At(bad, kHeader + index * kEntry + 48);
        storeU64At(&bad, offset, 5);
        fixColumnChecksum(&bad, index);
        fixTableHash(&bad);
        CbfFile file;
        ASSERT_TRUE(CbfFile::tryParse(bad, &file, &error)) << error;
        profile::ProfileDataset dataset = tinyDataset("sentinel");
        EXPECT_FALSE(profile::ProfileDataset::tryLoadCbf(file, &dataset,
                                                         &error));
        EXPECT_NE(error.find("inconsistent sample reservoir"),
                  std::string::npos)
            << error;
        EXPECT_EQ(dataset.ops()[0].model, "sentinel");
    }

    // An unknown GPU name in the op.gpu blob.
    {
        std::string bad = good;
        const std::size_t index = columnIndex(probe, "op.gpu");
        const std::uint64_t offset =
            loadU64At(bad, kHeader + index * kEntry + 48);
        bad[offset] = 'Q'; // "V100" -> "Q100".
        fixColumnChecksum(&bad, index);
        fixTableHash(&bad);
        CbfFile file;
        ASSERT_TRUE(CbfFile::tryParse(bad, &file, &error)) << error;
        profile::ProfileDataset dataset = tinyDataset("sentinel");
        EXPECT_FALSE(profile::ProfileDataset::tryLoadCbf(file, &dataset,
                                                         &error));
        EXPECT_NE(error.find("bad GPU"), std::string::npos) << error;
        EXPECT_EQ(dataset.ops()[0].model, "sentinel");
    }
}

TEST(CbfContainerTest, TryLoadFileSniffsTakesMmapAndFallsBack)
{
    obs::ScopedEnable on(true);
    obs::resetMetrics();
    const profile::ProfileDataset fixture = tinyDataset("alexnet");

    const std::string cbf_path = tempPath("dataset.cbf");
    const std::string csv_path = tempPath("dataset.csv");
    {
        std::ofstream cbf(cbf_path, std::ios::binary | std::ios::trunc);
        fixture.saveCbf(cbf);
        std::ofstream csv(csv_path, std::ios::trunc);
        fixture.saveCsv(csv);
    }

    // CBF file: loaded via mmap (the counter proves the path taken),
    // decoding the exact accumulator state.
    profile::ProfileDataset from_cbf;
    std::string error;
    ASSERT_TRUE(profile::ProfileDataset::tryLoadFile(cbf_path, &from_cbf,
                                                     &error))
        << error;
    EXPECT_GE(obs::snapshotMetrics().counterValue("io.mmap_hits"), 1u);
    EXPECT_EQ(datasetCbf(from_cbf), datasetCbf(fixture));

    // CSV file: sniffed as text and parsed by the CSV loader.
    profile::ProfileDataset from_csv;
    ASSERT_TRUE(profile::ProfileDataset::tryLoadFile(csv_path, &from_csv,
                                                     &error))
        << error;
    EXPECT_EQ(from_csv.ops().size(), fixture.ops().size());

    // A corrupt CBF file fails with the path and offset context, and
    // the output dataset stays untouched.
    std::string corrupt;
    {
        std::ifstream in(cbf_path, std::ios::binary);
        std::stringstream buffer;
        buffer << in.rdbuf();
        corrupt = buffer.str();
    }
    corrupt.back() ^= 0x01;
    const std::string corrupt_path = tempPath("dataset-corrupt.cbf");
    writeFile(corrupt_path, corrupt);
    profile::ProfileDataset untouched = tinyDataset("sentinel");
    EXPECT_FALSE(profile::ProfileDataset::tryLoadFile(
        corrupt_path, &untouched, &error));
    EXPECT_NE(error.find(corrupt_path), std::string::npos) << error;
    EXPECT_NE(error.find("offset"), std::string::npos) << error;
    EXPECT_EQ(untouched.ops()[0].model, "sentinel");
}

TEST(CbfContainerTest, SyntheticFleetIsDeterministicAndDialectExact)
{
    using cloud::InstanceCatalog;
    const InstanceCatalog a = InstanceCatalog::syntheticFleet(200);
    const InstanceCatalog b = InstanceCatalog::syntheticFleet(200);
    std::ostringstream bytes_a, bytes_b;
    a.saveCbf(bytes_a);
    b.saveCbf(bytes_b);
    EXPECT_EQ(bytes_a.str(), bytes_b.str());

    std::ostringstream other;
    InstanceCatalog::syntheticFleet(200, 43).saveCbf(other);
    EXPECT_NE(other.str(), bytes_a.str());

    // Prices are canonicalized at generation time, so the CSV dialect
    // decodes to the same bits as the CBF dialect.
    std::ostringstream csv;
    a.saveCsv(csv);
    std::istringstream csv_in(csv.str());
    InstanceCatalog from_csv;
    std::string error;
    ASSERT_TRUE(cloud::InstanceCatalog::tryFromCsv(csv_in, &from_csv,
                                                   &error))
        << error;
    std::ostringstream csv_cbf;
    from_csv.saveCbf(csv_cbf);
    EXPECT_EQ(csv_cbf.str(), bytes_a.str());
}

} // namespace
} // namespace io
} // namespace ceer
