/**
 * @file
 * Unit tests for the util module: statistics, RNG, CSV, strings, tables.
 */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace ceer {
namespace util {
namespace {

TEST(RunningStatsTest, EmptyIsZero)
{
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.normalizedStddev(), 0.0);
}

TEST(RunningStatsTest, MeanAndVarianceMatchClosedForm)
{
    RunningStats stats;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stats.add(x);
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    // Sample variance of the classic dataset is 32/7.
    EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential)
{
    RunningStats combined, a, b;
    for (int i = 0; i < 100; ++i) {
        const double x = std::sin(i) * 10.0 + i * 0.25;
        combined.add(x);
        (i < 37 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), combined.min());
    EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStatsTest, NormalizedStddevIsCoefficientOfVariation)
{
    RunningStats stats;
    stats.add(90.0);
    stats.add(110.0);
    // mean 100, sample stddev sqrt(200) ~ 14.14 -> CV ~ 0.1414.
    EXPECT_NEAR(stats.normalizedStddev(), std::sqrt(200.0) / 100.0,
                1e-12);
}

TEST(MedianTest, OddAndEvenCounts)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks)
{
    std::vector<double> values{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(values, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(values, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(values, 50.0), 25.0);
    EXPECT_DOUBLE_EQ(percentile(values, 25.0), 17.5);
}

TEST(SampleReservoirTest, RetainsEverythingBelowCapacity)
{
    SampleReservoir reservoir(100);
    for (int i = 1; i <= 99; ++i)
        reservoir.add(i);
    EXPECT_EQ(reservoir.offered(), 99u);
    EXPECT_EQ(reservoir.samples().size(), 99u);
    EXPECT_DOUBLE_EQ(reservoir.median(), 50.0);
}

TEST(SampleReservoirTest, BoundedAboveCapacityAndRepresentative)
{
    SampleReservoir reservoir(512);
    for (int i = 0; i < 100000; ++i)
        reservoir.add(static_cast<double>(i % 1000));
    EXPECT_EQ(reservoir.samples().size(), 512u);
    // Median of a uniform 0..999 stream should be near 500.
    EXPECT_NEAR(reservoir.median(), 500.0, 80.0);
}

TEST(EmpiricalCdfTest, MonotoneAndBounded)
{
    std::vector<double> values;
    for (int i = 0; i < 1000; ++i)
        values.push_back(std::fmod(i * 0.7153, 1.0));
    const auto cdf = empiricalCdf(values, 50);
    ASSERT_LE(cdf.size(), 50u);
    ASSERT_GE(cdf.size(), 2u);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_LE(cdf[i - 1].value, cdf[i].value);
        EXPECT_LT(cdf[i - 1].cumulative, cdf[i].cumulative);
    }
    EXPECT_DOUBLE_EQ(cdf.back().cumulative, 1.0);
}

TEST(MapeTest, ComputesMeanAbsolutePercentageError)
{
    EXPECT_NEAR(meanAbsolutePercentageError({100.0, 200.0},
                                            {110.0, 180.0}),
                0.10, 1e-12);
    // Zero observations are skipped rather than dividing by zero.
    EXPECT_NEAR(meanAbsolutePercentageError({0.0, 100.0}, {5.0, 90.0}),
                0.10, 1e-12);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(42);
    RunningStats stats;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        stats.add(u);
    }
    EXPECT_NEAR(stats.mean(), 0.5, 0.01);
    EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, StreamsAreDecorrelated)
{
    Rng a(7, 0), b(7, 1);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 5);
}

TEST(RngTest, NormalMomentsMatch)
{
    Rng rng(123);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.normal(10.0, 2.0));
    EXPECT_NEAR(stats.mean(), 10.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, LognormalFactorHasUnitMedian)
{
    Rng rng(9);
    std::vector<double> values;
    for (int i = 0; i < 20001; ++i)
        values.push_back(rng.lognormalFactor(0.3));
    EXPECT_NEAR(median(values), 1.0, 0.02);
}

TEST(RngTest, GammaMomentsMatch)
{
    Rng rng(77);
    RunningStats stats;
    const double shape = 2.5, scale = 1.5;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.gamma(shape, scale));
    EXPECT_NEAR(stats.mean(), shape * scale, 0.05);
    EXPECT_NEAR(stats.variance(), shape * scale * scale, 0.3);
}

TEST(RngTest, UniformIntBounds)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(CsvTest, EscapeRoundTrip)
{
    const std::vector<std::string> row{"plain", "with,comma",
                                       "with \"quote\"", ""};
    std::ostringstream out;
    CsvWriter writer(out);
    writer.writeRow(row);
    const auto parsed = parseCsvLine(
        out.str().substr(0, out.str().size() - 1));
    EXPECT_EQ(parsed, row);
}

TEST(CsvTest, ReadMultipleRows)
{
    std::istringstream in("a,b,c\n1,2,3\n\n4,5,6\n");
    const auto rows = readCsv(in);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0][0], "a");
    EXPECT_EQ(rows[2][2], "6");
}

TEST(StringsTest, SplitJoinTrim)
{
    EXPECT_EQ(split("a,b,,c", ','),
              (std::vector<std::string>{"a", "b", "", "c"}));
    EXPECT_EQ(join({"x", "y"}, "-"), "x-y");
    EXPECT_EQ(trim("  hello \t\n"), "hello");
    EXPECT_TRUE(startsWith("resnet_101", "resnet"));
    EXPECT_TRUE(endsWith("fig08_validation", "validation"));
    EXPECT_EQ(toLower("AbC"), "abc");
}

TEST(StringsTest, FormatAndHumanUnits)
{
    EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(humanBytes(85e6), "85.0MB");
    EXPECT_EQ(humanMicros(500.0), "500.0us");
    EXPECT_EQ(humanMicros(2500.0), "2.50ms");
    EXPECT_EQ(humanMicros(2.5e6), "2.50s");
    EXPECT_EQ(humanMicros(7.2e9), "2.00h");
}

TEST(TableTest, RendersAlignedColumns)
{
    TablePrinter table({"op", "time"});
    table.addRow({"Conv2D", "12.5"});
    table.addRow({"MaxPool", "3.1"});
    std::ostringstream out;
    table.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("Conv2D"), std::string::npos);
    EXPECT_NE(text.find("| op"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TableTest, CheckLineReportsBand)
{
    std::ostringstream out;
    EXPECT_TRUE(printCheck(out, "ratio", 10.0, 8.0, 12.0));
    EXPECT_FALSE(printCheck(out, "ratio", 20.0, 8.0, 12.0));
    EXPECT_NE(out.str().find("[PASS]"), std::string::npos);
    EXPECT_NE(out.str().find("[CHECK]"), std::string::npos);
}

TEST(FlagsTest, ParsesAllKinds)
{
    Flags flags;
    flags.defineInt("iters", 100, "iterations");
    flags.defineDouble("budget", 3.0, "budget");
    flags.defineString("model", "alexnet", "model name");
    flags.defineBool("verbose", false, "verbosity");

    const char *argv[] = {"prog", "--iters", "250", "--budget=4.5",
                          "--verbose", "extra"};
    flags.parse(6, const_cast<char **>(argv));

    EXPECT_EQ(flags.getInt("iters"), 250);
    EXPECT_DOUBLE_EQ(flags.getDouble("budget"), 4.5);
    EXPECT_EQ(flags.getString("model"), "alexnet");
    EXPECT_TRUE(flags.getBool("verbose"));
    ASSERT_EQ(flags.positional().size(), 1u);
    EXPECT_EQ(flags.positional()[0], "extra");
}

} // namespace
} // namespace util
} // namespace ceer
