/**
 * @file
 * Unit tests for the util module: statistics, RNG, CSV, strings, tables.
 */

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/flags.h"
#include "util/parse.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace ceer {
namespace util {
namespace {

TEST(RunningStatsTest, EmptyIsZero)
{
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.normalizedStddev(), 0.0);
}

TEST(RunningStatsTest, MeanAndVarianceMatchClosedForm)
{
    RunningStats stats;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stats.add(x);
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    // Sample variance of the classic dataset is 32/7.
    EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential)
{
    RunningStats combined, a, b;
    for (int i = 0; i < 100; ++i) {
        const double x = std::sin(i) * 10.0 + i * 0.25;
        combined.add(x);
        (i < 37 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), combined.min());
    EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStatsTest, MergedChunksMatchSinglePass)
{
    // The parallel simulator accumulates fixed-size chunks and merges
    // them in order; the result must match a single-pass accumulation
    // on count, mean, and variance for any chunking.
    std::vector<double> data;
    for (int i = 0; i < 257; ++i)
        data.push_back(std::cos(i * 0.37) * 40.0 + i * 0.11);

    RunningStats single_pass;
    for (double x : data)
        single_pass.add(x);

    for (std::size_t chunk : {1u, 7u, 32u, 256u, 1000u}) {
        RunningStats merged;
        for (std::size_t start = 0; start < data.size(); start += chunk) {
            RunningStats part;
            const std::size_t stop =
                std::min(start + chunk, data.size());
            for (std::size_t i = start; i < stop; ++i)
                part.add(data[i]);
            merged.merge(part);
        }
        SCOPED_TRACE(chunk);
        EXPECT_EQ(merged.count(), single_pass.count());
        EXPECT_NEAR(merged.mean(), single_pass.mean(), 1e-9);
        EXPECT_NEAR(merged.variance(), single_pass.variance(), 1e-9);
        EXPECT_DOUBLE_EQ(merged.min(), single_pass.min());
        EXPECT_DOUBLE_EQ(merged.max(), single_pass.max());
    }
}

TEST(RunningStatsTest, MergeWithEmptyChunkIsIdentity)
{
    RunningStats filled;
    for (double x : {1.5, -2.0, 8.25})
        filled.add(x);
    const RunningStats empty;

    // Non-empty <- empty: nothing changes, bit for bit.
    RunningStats a = filled;
    a.merge(empty);
    EXPECT_EQ(a.count(), filled.count());
    EXPECT_DOUBLE_EQ(a.mean(), filled.mean());
    EXPECT_DOUBLE_EQ(a.variance(), filled.variance());
    EXPECT_DOUBLE_EQ(a.min(), filled.min());
    EXPECT_DOUBLE_EQ(a.max(), filled.max());

    // Empty <- non-empty: adopts the source exactly.
    RunningStats b;
    b.merge(filled);
    EXPECT_EQ(b.count(), filled.count());
    EXPECT_DOUBLE_EQ(b.mean(), filled.mean());
    EXPECT_DOUBLE_EQ(b.variance(), filled.variance());
    EXPECT_DOUBLE_EQ(b.min(), filled.min());
    EXPECT_DOUBLE_EQ(b.max(), filled.max());

    // Empty <- empty stays empty.
    RunningStats c;
    c.merge(empty);
    EXPECT_EQ(c.count(), 0u);
    EXPECT_DOUBLE_EQ(c.variance(), 0.0);
}

TEST(RunningStatsTest, MergeOfSingleElementChunksMatchesAdds)
{
    // Degenerate chunking: every chunk holds one element (variance of
    // each part is zero; the merge must still build the right moments).
    RunningStats merged, added;
    for (double x : {3.0, 3.0, 4.5, -1.0, 0.0, 12.5}) {
        added.add(x);
        RunningStats one;
        one.add(x);
        merged.merge(one);
    }
    EXPECT_EQ(merged.count(), added.count());
    EXPECT_NEAR(merged.mean(), added.mean(), 1e-12);
    EXPECT_NEAR(merged.variance(), added.variance(), 1e-12);
}

TEST(RunningStatsTest, NormalizedStddevIsCoefficientOfVariation)
{
    RunningStats stats;
    stats.add(90.0);
    stats.add(110.0);
    // mean 100, sample stddev sqrt(200) ~ 14.14 -> CV ~ 0.1414.
    EXPECT_NEAR(stats.normalizedStddev(), std::sqrt(200.0) / 100.0,
                1e-12);
}

TEST(MedianTest, OddAndEvenCounts)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks)
{
    std::vector<double> values{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(values, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(values, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(values, 50.0), 25.0);
    EXPECT_DOUBLE_EQ(percentile(values, 25.0), 17.5);
}

TEST(SampleReservoirTest, RetainsEverythingBelowCapacity)
{
    SampleReservoir reservoir(100);
    for (int i = 1; i <= 99; ++i)
        reservoir.add(i);
    EXPECT_EQ(reservoir.offered(), 99u);
    EXPECT_EQ(reservoir.samples().size(), 99u);
    EXPECT_DOUBLE_EQ(reservoir.median(), 50.0);
}

TEST(SampleReservoirTest, BoundedAboveCapacityAndRepresentative)
{
    SampleReservoir reservoir(512);
    for (int i = 0; i < 100000; ++i)
        reservoir.add(static_cast<double>(i % 1000));
    EXPECT_EQ(reservoir.samples().size(), 512u);
    // Median of a uniform 0..999 stream should be near 500.
    EXPECT_NEAR(reservoir.median(), 500.0, 80.0);
}

TEST(EmpiricalCdfTest, MonotoneAndBounded)
{
    std::vector<double> values;
    for (int i = 0; i < 1000; ++i)
        values.push_back(std::fmod(i * 0.7153, 1.0));
    const auto cdf = empiricalCdf(values, 50);
    ASSERT_LE(cdf.size(), 50u);
    ASSERT_GE(cdf.size(), 2u);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_LE(cdf[i - 1].value, cdf[i].value);
        EXPECT_LT(cdf[i - 1].cumulative, cdf[i].cumulative);
    }
    EXPECT_DOUBLE_EQ(cdf.back().cumulative, 1.0);
}

TEST(MapeTest, ComputesMeanAbsolutePercentageError)
{
    EXPECT_NEAR(meanAbsolutePercentageError({100.0, 200.0},
                                            {110.0, 180.0}),
                0.10, 1e-12);
    // Zero observations are skipped rather than dividing by zero.
    EXPECT_NEAR(meanAbsolutePercentageError({0.0, 100.0}, {5.0, 90.0}),
                0.10, 1e-12);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(42);
    RunningStats stats;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        stats.add(u);
    }
    EXPECT_NEAR(stats.mean(), 0.5, 0.01);
    EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, StreamsAreDecorrelated)
{
    Rng a(7, 0), b(7, 1);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 5);
}

TEST(RngTest, NormalMomentsMatch)
{
    Rng rng(123);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.normal(10.0, 2.0));
    EXPECT_NEAR(stats.mean(), 10.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, LognormalFactorHasUnitMedian)
{
    Rng rng(9);
    std::vector<double> values;
    for (int i = 0; i < 20001; ++i)
        values.push_back(rng.lognormalFactor(0.3));
    EXPECT_NEAR(median(values), 1.0, 0.02);
}

TEST(RngTest, GammaMomentsMatch)
{
    Rng rng(77);
    RunningStats stats;
    const double shape = 2.5, scale = 1.5;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.gamma(shape, scale));
    EXPECT_NEAR(stats.mean(), shape * scale, 0.05);
    EXPECT_NEAR(stats.variance(), shape * scale * scale, 0.3);
}

TEST(RngTest, NormalCachingCouplesTheSequence)
{
    // Pins the Box-Muller pairing contract documented on Rng::normal():
    // every odd call computes two deviates and caches one; every even
    // call returns the cache and consumes no generator state.
    Rng a(42), b(42);
    EXPECT_DOUBLE_EQ(a.normal(), b.normal()); // odd call: pair drawn.

    // An extra draw interleaved between the paired calls does not
    // change the cached second deviate...
    (void)b.uniform();
    EXPECT_DOUBLE_EQ(a.normal(), b.normal()); // even call: cache only.

    // ...but it consumed state, so everything after the pair diverges:
    // the streams are coupled to the full call history.
    EXPECT_NE(a.normal(), b.normal());

    // Identical call sequences stay in lockstep indefinitely.
    Rng c(42), d(42);
    for (int i = 0; i < 9; ++i) {
        SCOPED_TRACE(i);
        EXPECT_DOUBLE_EQ(c.normal(), d.normal());
    }
}

TEST(InverseNormalCdfTest, KnownQuantiles)
{
    // Acklam's approximation is good to ~1.2e-9 relative; check the
    // median, the central branch, and both tails against textbook
    // quantiles.
    EXPECT_NEAR(inverseNormalCdf(0.5), 0.0, 1e-9);
    EXPECT_NEAR(inverseNormalCdf(0.975), 1.959963985, 1e-7);
    EXPECT_NEAR(inverseNormalCdf(0.025), -1.959963985, 1e-7);
    EXPECT_NEAR(inverseNormalCdf(0.841344746), 1.0, 1e-7);
    EXPECT_NEAR(inverseNormalCdf(0.001), -3.090232306, 1e-7);
    EXPECT_NEAR(inverseNormalCdf(0.999), 3.090232306, 1e-7);
}

TEST(InverseNormalCdfTest, MonotoneAcrossTheBranchPoint)
{
    // The central/tail branch seam (p = 0.02425) must not introduce a
    // jump: the quantile function is strictly increasing.
    double last = inverseNormalCdf(1e-6);
    for (double p = 1e-4; p < 1.0 - 1e-4; p += 1e-4) {
        const double z = inverseNormalCdf(p);
        ASSERT_GT(z, last) << "p=" << p;
        last = z;
    }
}

TEST(InverseNormalCdfTest, RejectsOutOfRange)
{
    EXPECT_DEATH(inverseNormalCdf(0.0), "requires p");
    EXPECT_DEATH(inverseNormalCdf(1.0), "requires p");
    EXPECT_DEATH(inverseNormalCdf(-0.3), "requires p");
}

TEST(CounterBasedDrawTest, PureFunctionOfKey)
{
    // Counter-based draws must not depend on any hidden state: the
    // same key always yields the same deviate, different keys differ.
    EXPECT_DOUBLE_EQ(normalFromKey(123), normalFromKey(123));
    EXPECT_NE(normalFromKey(123), normalFromKey(124));
    EXPECT_DOUBLE_EQ(uniformFromKey(99), uniformFromKey(99));
}

TEST(CounterBasedDrawTest, NormalFromKeyMomentsMatch)
{
    RunningStats stats;
    for (std::uint64_t key = 0; key < 50000; ++key)
        stats.add(normalFromKey(hashMix(2026, key)));
    EXPECT_NEAR(stats.mean(), 0.0, 0.02);
    EXPECT_NEAR(stats.variance(), 1.0, 0.03);
}

TEST(RngTest, UniformIntBounds)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(CsvTest, EscapeRoundTrip)
{
    const std::vector<std::string> row{"plain", "with,comma",
                                       "with \"quote\"", ""};
    std::ostringstream out;
    CsvWriter writer(out);
    writer.writeRow(row);
    const auto parsed = parseCsvLine(
        out.str().substr(0, out.str().size() - 1));
    EXPECT_EQ(parsed, row);
}

TEST(CsvTest, ReadMultipleRows)
{
    std::istringstream in("a,b,c\n1,2,3\n\n4,5,6\n");
    const auto rows = readCsv(in);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0][0], "a");
    EXPECT_EQ(rows[2][2], "6");
}

TEST(CsvTest, QuotedCommaAndEscapedQuote)
{
    const auto fields =
        parseCsvLine("a,\"b,c\",\"he said \"\"hi\"\"\"");
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[1], "b,c");
    EXPECT_EQ(fields[2], "he said \"hi\"");
}

TEST(CsvTest, EmptyTrailingFieldSurvives)
{
    const auto fields = parseCsvLine("a,b,");
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[2], "");
}

TEST(CsvTest, CrlfRecordSeparatorsTolerated)
{
    std::istringstream in("a,b\r\nc,d\r\n\r\n e ,f\r\n");
    const auto rows = readCsv(in);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
    EXPECT_EQ(rows[2], (std::vector<std::string>{" e ", "f"}));
}

TEST(CsvTest, CarriageReturnInsideQuotesIsPreserved)
{
    // Regression: the old parser stripped \r even inside quotes, so a
    // field containing a carriage return did not round-trip.
    const std::vector<std::string> row{"a\rb", "x\r\ny"};
    std::ostringstream out;
    CsvWriter writer(out);
    writer.writeRow(row);
    std::istringstream in(out.str());
    const auto rows = readCsv(in);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0], row);
}

TEST(CsvTest, NewlinesInsideQuotedFieldsSpanRecords)
{
    // RFC 4180 multi-line records: a quoted field may contain the
    // record separator. The old getline-based reader split these.
    const std::vector<std::string> row{"line1\nline2", "tail"};
    std::ostringstream out;
    CsvWriter writer(out);
    writer.writeRow(row);
    writer.writeRow({"next", "record"});
    std::istringstream in(out.str());
    const auto rows = readCsv(in);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], row);
    EXPECT_EQ(rows[1], (std::vector<std::string>{"next", "record"}));
}

TEST(CsvTest, LoneEmptyFieldRoundTrips)
{
    // A record of one empty field is written quoted so it is not
    // mistaken for a blank (skipped) line on read.
    std::ostringstream out;
    CsvWriter writer(out);
    writer.writeRow({""});
    EXPECT_EQ(out.str(), "\"\"\n");
    std::istringstream in(out.str());
    const auto rows = readCsv(in);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{""}));
}

TEST(CsvTest, UnterminatedQuoteIsRejected)
{
    std::vector<std::string> fields;
    std::string error;
    EXPECT_FALSE(tryParseCsvLine("\"abc", &fields, &error));
    EXPECT_NE(error.find("unterminated"), std::string::npos);

    std::istringstream in("a,b\nc,\"oops\n");
    std::vector<std::vector<std::string>> rows;
    EXPECT_FALSE(tryReadCsv(in, &rows, &error));
    // The error pinpoints where the open quote started.
    EXPECT_NE(error.find("line"), std::string::npos);
    EXPECT_NE(error.find("2"), std::string::npos);

    EXPECT_DEATH(parseCsvLine("\"abc"), "unterminated");
}

TEST(ParseTest, ParsesValidDoubles)
{
    EXPECT_DOUBLE_EQ(parseDouble("3.25").value, 3.25);
    EXPECT_DOUBLE_EQ(parseDouble("-1e-9").value, -1e-9);
    EXPECT_DOUBLE_EQ(parseDouble("+7").value, 7.0);
    EXPECT_TRUE(std::isinf(parseDouble("inf").value));
    EXPECT_TRUE(std::isinf(parseDouble("-inf").value));
    EXPECT_LT(parseDouble("-inf").value, 0.0);
    EXPECT_TRUE(std::isnan(parseDouble("nan").value));
    // "%.17g" output round-trips bit for bit.
    const double value = 0.1 + 0.2;
    const auto parsed = parseDouble(format("%.17g", value));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value, value);
}

TEST(ParseTest, RejectsMalformedDoubles)
{
    EXPECT_FALSE(parseDouble("").ok());
    EXPECT_FALSE(parseDouble("12x").ok());
    EXPECT_FALSE(parseDouble(" 1").ok());
    EXPECT_FALSE(parseDouble("1 ").ok());
    EXPECT_FALSE(parseDouble("--2").ok());
    EXPECT_FALSE(parseDouble("1,5").ok());
    EXPECT_STREQ(parseDouble("garbage").error, "not a number");
}

TEST(ParseTest, ParsesAndRejectsInt64)
{
    EXPECT_EQ(parseInt64("42").value, 42);
    EXPECT_EQ(parseInt64("-7").value, -7);
    EXPECT_EQ(parseInt64("+13").value, 13);
    EXPECT_EQ(parseInt64("9223372036854775807").value,
              std::numeric_limits<std::int64_t>::max());
    EXPECT_FALSE(parseInt64("9223372036854775808").ok()); // overflow
    EXPECT_FALSE(parseInt64("").ok());
    EXPECT_FALSE(parseInt64("12.5").ok());
    EXPECT_FALSE(parseInt64("ten").ok());
    EXPECT_FALSE(parseInt64("1e3").ok());
}

TEST(ParseTest, ParsesAndRejectsSizes)
{
    EXPECT_EQ(parseSize("0").value, 0u);
    EXPECT_EQ(parseSize("18446744073709551615").value,
              std::numeric_limits<std::uint64_t>::max());
    EXPECT_FALSE(parseSize("18446744073709551616").ok()); // overflow
    EXPECT_FALSE(parseSize("-1").ok());
    EXPECT_STREQ(parseSize("-1").error, "negative count");
    EXPECT_FALSE(parseSize("3.0").ok());
    EXPECT_FALSE(parseSize("").ok());
}

TEST(StringsTest, SplitJoinTrim)
{
    EXPECT_EQ(split("a,b,,c", ','),
              (std::vector<std::string>{"a", "b", "", "c"}));
    EXPECT_EQ(join({"x", "y"}, "-"), "x-y");
    EXPECT_EQ(trim("  hello \t\n"), "hello");
    EXPECT_TRUE(startsWith("resnet_101", "resnet"));
    EXPECT_TRUE(endsWith("fig08_validation", "validation"));
    EXPECT_EQ(toLower("AbC"), "abc");
}

TEST(StringsTest, FormatAndHumanUnits)
{
    EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(humanBytes(85e6), "85.0MB");
    EXPECT_EQ(humanMicros(500.0), "500.0us");
    EXPECT_EQ(humanMicros(2500.0), "2.50ms");
    EXPECT_EQ(humanMicros(2.5e6), "2.50s");
    EXPECT_EQ(humanMicros(7.2e9), "2.00h");
}

TEST(TableTest, RendersAlignedColumns)
{
    TablePrinter table({"op", "time"});
    table.addRow({"Conv2D", "12.5"});
    table.addRow({"MaxPool", "3.1"});
    std::ostringstream out;
    table.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("Conv2D"), std::string::npos);
    EXPECT_NE(text.find("| op"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TableTest, CheckLineReportsBand)
{
    std::ostringstream out;
    EXPECT_TRUE(printCheck(out, "ratio", 10.0, 8.0, 12.0));
    EXPECT_FALSE(printCheck(out, "ratio", 20.0, 8.0, 12.0));
    EXPECT_NE(out.str().find("[PASS]"), std::string::npos);
    EXPECT_NE(out.str().find("[CHECK]"), std::string::npos);
}

TEST(FlagsTest, ParsesAllKinds)
{
    Flags flags;
    flags.defineInt("iters", 100, "iterations");
    flags.defineDouble("budget", 3.0, "budget");
    flags.defineString("model", "alexnet", "model name");
    flags.defineBool("verbose", false, "verbosity");

    const char *argv[] = {"prog", "--iters", "250", "--budget=4.5",
                          "--verbose", "extra"};
    flags.parse(6, const_cast<char **>(argv));

    EXPECT_EQ(flags.getInt("iters"), 250);
    EXPECT_DOUBLE_EQ(flags.getDouble("budget"), 4.5);
    EXPECT_EQ(flags.getString("model"), "alexnet");
    EXPECT_TRUE(flags.getBool("verbose"));
    ASSERT_EQ(flags.positional().size(), 1u);
    EXPECT_EQ(flags.positional()[0], "extra");
}

TEST(FlagsTest, RepeatedFlagLastValueWins)
{
    Flags flags;
    flags.defineInt("iters", 100, "iterations");
    const char *argv[] = {"prog", "--iters", "10", "--iters=20"};
    flags.parse(4, const_cast<char **>(argv));
    EXPECT_EQ(flags.getInt("iters"), 20);
}

TEST(FlagsTest, UnknownFlagIsFatal)
{
    Flags flags;
    flags.defineInt("iters", 100, "iterations");
    const char *argv[] = {"prog", "--itres", "10"};
    EXPECT_DEATH(flags.parse(3, const_cast<char **>(argv)), "itres");
}

TEST(FlagsTest, MalformedValueIsFatal)
{
    Flags flags;
    flags.defineInt("iters", 100, "iterations");
    flags.defineDouble("budget", 3.0, "budget");
    {
        const char *argv[] = {"prog", "--iters", "ten"};
        EXPECT_DEATH(flags.parse(3, const_cast<char **>(argv)), "");
    }
    {
        const char *argv[] = {"prog", "--budget=lots"};
        EXPECT_DEATH(flags.parse(2, const_cast<char **>(argv)), "");
    }
}

TEST(FlagsTest, MissingValueIsFatal)
{
    Flags flags;
    flags.defineString("model", "alexnet", "model name");
    const char *argv[] = {"prog", "--model"};
    EXPECT_DEATH(flags.parse(2, const_cast<char **>(argv)), "");
}

TEST(FlagsTest, UndeclaredLookupIsFatal)
{
    Flags flags;
    flags.defineInt("iters", 100, "iterations");
    EXPECT_DEATH((void)flags.getInt("nope"), "");
    // Kind mismatch is also a programming error, not a silent cast.
    EXPECT_DEATH((void)flags.getString("iters"), "");
}

TEST(FlagsTest, BoolFlagConsumesSeparateTokenValue)
{
    // `--verbose false` once left `false` behind as a positional
    // argument; the separate-token value must be consumed.
    Flags flags;
    flags.defineBool("verbose", false, "verbosity");
    flags.defineBool("quiet", false, "quietness");
    const char *argv[] = {"prog",  "--verbose", "false",
                          "--quiet", "true",    "extra"};
    flags.parse(6, const_cast<char **>(argv));
    EXPECT_FALSE(flags.getBool("verbose"));
    EXPECT_TRUE(flags.getBool("quiet"));
    ASSERT_EQ(flags.positional().size(), 1u);
    EXPECT_EQ(flags.positional()[0], "extra");
}

TEST(FlagsTest, BoolFlagKeepsNonBoolFollowerPositional)
{
    // Only the literal `true`/`false` tokens belong to the switch;
    // anything else after a bare bool flag stays positional.
    Flags flags;
    flags.defineBool("verbose", false, "verbosity");
    const char *argv[] = {"prog", "--verbose", "falsey"};
    flags.parse(3, const_cast<char **>(argv));
    EXPECT_TRUE(flags.getBool("verbose"));
    ASSERT_EQ(flags.positional().size(), 1u);
    EXPECT_EQ(flags.positional()[0], "falsey");
}

TEST(FlagsTest, DoubleDashEndsFlagParsing)
{
    // After `--`, flag-shaped tokens are data, not flags: they must
    // neither update declared flags nor die as unknown ones.
    Flags flags;
    flags.defineInt("iters", 100, "iterations");
    const char *argv[] = {"prog", "--iters", "250", "--",
                          "--iters", "999", "--unknown"};
    flags.parse(7, const_cast<char **>(argv));
    EXPECT_EQ(flags.getInt("iters"), 250);
    ASSERT_EQ(flags.positional().size(), 3u);
    EXPECT_EQ(flags.positional()[0], "--iters");
    EXPECT_EQ(flags.positional()[1], "999");
    EXPECT_EQ(flags.positional()[2], "--unknown");
}

TEST(FlagsTest, UsageListsFlagsAndDefaults)
{
    Flags flags;
    flags.defineInt("iters", 100, "profiling iterations");
    flags.defineBool("verbose", false, "verbosity");
    const std::string usage = flags.usage("prog");
    EXPECT_NE(usage.find("prog"), std::string::npos);
    EXPECT_NE(usage.find("--iters"), std::string::npos);
    EXPECT_NE(usage.find("100"), std::string::npos);
    EXPECT_NE(usage.find("profiling iterations"), std::string::npos);
    EXPECT_NE(usage.find("--verbose"), std::string::npos);
}

} // namespace
} // namespace util
} // namespace ceer
