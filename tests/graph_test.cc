/**
 * @file
 * Unit tests for the graph substrate: shapes, op registry, DAG
 * invariants, shape inference, builder expansion and autodiff.
 */

#include <gtest/gtest.h>

#include "graph/autodiff.h"
#include "graph/builder.h"
#include "graph/graph.h"
#include "graph/op_type.h"
#include "graph/shape_inference.h"
#include "graph/tensor_shape.h"

namespace ceer {
namespace graph {
namespace {

TEST(TensorShapeTest, BasicAccessors)
{
    const TensorShape shape = TensorShape::nhwc(32, 224, 224, 3);
    EXPECT_EQ(shape.rank(), 4u);
    EXPECT_EQ(shape.batch(), 32);
    EXPECT_EQ(shape.height(), 224);
    EXPECT_EQ(shape.width(), 224);
    EXPECT_EQ(shape.channels(), 3);
    EXPECT_EQ(shape.numElements(), 32ll * 224 * 224 * 3);
    EXPECT_EQ(shape.numBytes(), shape.numElements() * 4);
    EXPECT_EQ(shape.toString(), "[32,224,224,3]");
}

TEST(TensorShapeTest, ScalarAndNegativeAxis)
{
    const TensorShape scalar{};
    EXPECT_EQ(scalar.rank(), 0u);
    EXPECT_EQ(scalar.numElements(), 1);

    const TensorShape m = TensorShape::matrix(8, 1000);
    EXPECT_EQ(m.dim(-1), 1000);
    EXPECT_EQ(m.channels(), 1000);
}

TEST(TensorShapeTest, WithBatchReplacesLeadingDim)
{
    const TensorShape shape = TensorShape::nhwc(32, 7, 7, 512);
    const TensorShape rebatched = shape.withBatch(8);
    EXPECT_EQ(rebatched.batch(), 8);
    EXPECT_EQ(rebatched.channels(), 512);
    EXPECT_EQ(shape.batch(), 32);
}

TEST(OpTypeTest, NamesRoundTrip)
{
    for (OpType type : allOpTypes()) {
        OpType parsed;
        ASSERT_TRUE(opTypeFromName(opTypeName(type), parsed))
            << opTypeName(type);
        EXPECT_EQ(parsed, type);
    }
    OpType unused;
    EXPECT_FALSE(opTypeFromName("NotAnOp", unused));
}

TEST(OpTypeTest, DevicePlacementMatchesPaper)
{
    // SparseToDense is the paper's canonical CPU-only op (Sec. IV-B).
    EXPECT_EQ(opTypeInfo(OpType::SparseToDense).device, Device::Cpu);
    EXPECT_EQ(opTypeInfo(OpType::Conv2D).device, Device::Gpu);
    EXPECT_EQ(opTypeInfo(OpType::IteratorGetNext).device, Device::Cpu);
}

TEST(ShapeInferenceTest, SamePaddingCeilDivides)
{
    EXPECT_EQ(convOutputDim(224, 3, 1, PaddingMode::Same), 224);
    EXPECT_EQ(convOutputDim(224, 3, 2, PaddingMode::Same), 112);
    EXPECT_EQ(convOutputDim(35, 3, 2, PaddingMode::Same), 18);
}

TEST(ShapeInferenceTest, ValidPaddingShrinks)
{
    EXPECT_EQ(convOutputDim(227, 11, 4, PaddingMode::Valid), 55);
    EXPECT_EQ(convOutputDim(299, 3, 2, PaddingMode::Valid), 149);
    EXPECT_EQ(convOutputDim(28, 3, 1, PaddingMode::Valid), 26);
}

TEST(ShapeInferenceTest, Conv2dAndPoolShapes)
{
    const TensorShape input = TensorShape::nhwc(32, 56, 56, 64);
    EXPECT_EQ(conv2dOutputShape(input, 128, 3, 3, 2, PaddingMode::Same),
              TensorShape::nhwc(32, 28, 28, 128));
    EXPECT_EQ(poolOutputShape(input, 2, 2, 2, PaddingMode::Valid),
              TensorShape::nhwc(32, 28, 28, 64));
}

TEST(ShapeInferenceTest, ConcatAndFlatten)
{
    const TensorShape a = TensorShape::nhwc(8, 35, 35, 64);
    const TensorShape b = TensorShape::nhwc(8, 35, 35, 96);
    EXPECT_EQ(concatChannelsShape({a, b}),
              TensorShape::nhwc(8, 35, 35, 160));
    EXPECT_EQ(flattenShape(TensorShape::nhwc(8, 6, 6, 256)),
              TensorShape::matrix(8, 9216));
}

TEST(GraphTest, AddNodeRecordsShapesAndUniquifiesNames)
{
    Graph g("test");
    const TensorShape shape = TensorShape::nhwc(4, 8, 8, 16);
    const NodeId a = g.addNode("x", OpType::Identity, {}, {}, shape);
    const NodeId b = g.addNode("x", OpType::Relu, {a}, {}, shape);
    EXPECT_EQ(g.node(a).name, "x");
    EXPECT_EQ(g.node(b).name, "x_1");
    ASSERT_EQ(g.node(b).inputShapes.size(), 1u);
    EXPECT_EQ(g.node(b).inputShapes[0], shape);
    std::string error;
    EXPECT_TRUE(g.validate(&error)) << error;
}

TEST(GraphTest, InputAndOutputBytes)
{
    Graph g("test");
    const TensorShape shape = TensorShape::nhwc(1, 10, 10, 10);
    const NodeId a = g.addNode("a", OpType::Identity, {}, {}, shape);
    const NodeId b = g.addNode("b", OpType::AddV2, {a, a}, {}, shape);
    EXPECT_EQ(g.node(b).inputBytes(), 2 * 1000 * 4);
    EXPECT_EQ(g.node(b).outputBytes(), 1000 * 4);
}

TEST(GraphTest, ConsumersAndCounts)
{
    Graph g("test");
    const TensorShape shape{16};
    const NodeId a = g.addNode("a", OpType::Identity, {}, {}, shape);
    const NodeId b = g.addNode("b", OpType::Relu, {a}, {}, shape);
    const NodeId c = g.addNode("c", OpType::Relu, {a}, {}, shape);
    g.addNode("d", OpType::AddV2, {b, c}, {}, shape);

    const auto &consumers = g.consumers();
    EXPECT_EQ(consumers[static_cast<std::size_t>(a)].size(), 2u);

    const auto counts = g.countByOpType();
    ASSERT_FALSE(counts.empty());
    EXPECT_EQ(counts[0].type, OpType::Relu);
    EXPECT_EQ(counts[0].count, 2u);
}

TEST(GraphTest, ParamVarsAccumulate)
{
    Graph g("test");
    g.addParamVar("w1", TensorShape{3, 3, 64, 128});
    g.addParamVar("b1", TensorShape{128});
    EXPECT_EQ(g.totalParameters(), 3ll * 3 * 64 * 128 + 128);
}

TEST(GraphTest, DotExportMentionsNodes)
{
    Graph g("tiny");
    const NodeId a =
        g.addNode("in", OpType::Identity, {}, {}, TensorShape{4});
    g.addNode("out", OpType::Relu, {a}, {}, TensorShape{4});
    const std::string dot = g.toDot();
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("Relu"), std::string::npos);
    EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(BuilderTest, ConvLayerExpandsToConvBnRelu)
{
    GraphBuilder b("m", 8);
    const NodeId x = b.imageInput(32, 32, 3);
    ConvOptions options;
    options.batchNorm = true;
    options.relu = true;
    b.conv2d(x, 16, 3, 3, options, "layer");
    Graph g = b.finish();

    bool saw_conv = false, saw_bn = false, saw_relu = false;
    for (const auto &node : g.nodes()) {
        saw_conv |= node.type == OpType::Conv2D;
        saw_bn |= node.type == OpType::FusedBatchNormV3;
        saw_relu |= node.type == OpType::Relu;
    }
    EXPECT_TRUE(saw_conv && saw_bn && saw_relu);
    // Filter (3*3*3*16) plus BN scale/offset (2*16).
    EXPECT_EQ(g.totalParameters(), 3ll * 3 * 3 * 16 + 32);
}

TEST(BuilderTest, ConvFilterShapeBecomesInputFeature)
{
    GraphBuilder b("m", 8);
    const NodeId x = b.imageInput(32, 32, 3);
    ConvOptions options;
    options.batchNorm = false;
    options.relu = false;
    b.conv2d(x, 16, 5, 5, options, "layer");
    Graph g = b.finish();
    for (const auto &node : g.nodes()) {
        if (node.type == OpType::Conv2D) {
            ASSERT_EQ(node.inputShapes.size(), 2u);
            EXPECT_EQ(node.inputShapes[1],
                      (TensorShape{5, 5, 3, 16}));
            EXPECT_EQ(node.attrs.filterShape,
                      (TensorShape{5, 5, 3, 16}));
            return;
        }
    }
    FAIL() << "Conv2D node not found";
}

TEST(BuilderTest, DropoutMaskChainIsNonDifferentiable)
{
    GraphBuilder b("m", 4);
    const NodeId x = b.imageInput(8, 8, 3);
    const NodeId flat = b.flatten(x, "flat");
    b.dropout(flat, "drop");
    Graph g = b.finish();
    bool saw_uniform = false;
    for (const auto &node : g.nodes()) {
        if (node.type == OpType::RandomUniform) {
            saw_uniform = true;
            EXPECT_EQ(node.device(), Device::Cpu);
            EXPECT_FALSE(isDifferentiable(node.type));
        }
    }
    EXPECT_TRUE(saw_uniform);
}

TEST(BuilderTest, SoftmaxLossAddsCpuLabelOps)
{
    GraphBuilder b("m", 4);
    NodeId x = b.imageInput(8, 8, 3);
    x = b.fullyConnected(x, 10, false, "logits");
    b.softmaxLoss(x);
    Graph g = b.finish();
    bool saw_sparse = false;
    for (const auto &node : g.nodes())
        saw_sparse |= node.type == OpType::SparseToDense;
    EXPECT_TRUE(saw_sparse);
    EXPECT_GT(g.cpuOpCount(), 2u);
}

/** Builds a tiny conv net and returns its trained graph. */
Graph
tinyTrainedNet()
{
    GraphBuilder b("tiny", 4);
    NodeId x = b.imageInput(16, 16, 3);
    ConvOptions options;
    options.batchNorm = true;
    x = b.conv2d(x, 8, 3, 3, options, "conv1");
    x = b.maxPool(x, 2, 2, PaddingMode::Valid, "pool1");
    x = b.fullyConnected(x, 10, false, "logits");
    const NodeId loss = b.softmaxLoss(x);
    addTrainingOps(b.graph(), loss);
    return b.finish();
}

TEST(AutodiffTest, EmitsExpectedBackwardOps)
{
    Graph g = tinyTrainedNet();
    std::string error;
    ASSERT_TRUE(g.validate(&error)) << error;

    std::map<OpType, int> counts;
    for (const auto &node : g.nodes())
        ++counts[node.type];

    EXPECT_EQ(counts[OpType::Conv2DBackpropFilter], 1);
    // First conv has the input pipeline as producer: no BackpropInput.
    EXPECT_EQ(counts[OpType::Conv2DBackpropInput], 0);
    EXPECT_EQ(counts[OpType::MaxPoolGrad], 1);
    EXPECT_EQ(counts[OpType::FusedBatchNormGradV3], 1);
    EXPECT_GE(counts[OpType::BiasAddGrad], 1);
    // MatMul: 1 forward + 2 backward.
    EXPECT_EQ(counts[OpType::MatMul], 3);
    // Updates: conv filter, bn scale+offset, fc weight+bias.
    EXPECT_EQ(counts[OpType::ApplyGradientDescent], 5);
}

TEST(AutodiffTest, BackwardShapesMirrorForward)
{
    Graph g = tinyTrainedNet();
    for (const auto &node : g.nodes()) {
        if (node.type == OpType::MaxPoolGrad) {
            // Gradient of the pool input has the pool input's shape.
            ASSERT_EQ(node.inputShapes.size(), 3u);
            EXPECT_EQ(node.outputShape, node.inputShapes[0]);
        }
        if (node.type == OpType::Conv2DBackpropFilter) {
            EXPECT_EQ(node.outputShape, node.attrs.filterShape);
        }
    }
}

TEST(AutodiffTest, ResidualFanOutCreatesAddN)
{
    GraphBuilder b("residual", 4);
    NodeId x = b.imageInput(8, 8, 3);
    ConvOptions options;
    options.batchNorm = false;
    options.bias = false;
    options.relu = false;
    // x (via conv to fix channels) feeds both a conv path and the add.
    NodeId base = b.conv2d(x, 8, 1, 1, options, "pre");
    NodeId path = b.conv2d(base, 8, 3, 3, options, "conv");
    NodeId sum = b.add(base, path, "residual");
    NodeId logits = b.fullyConnected(sum, 10, false, "logits");
    const NodeId loss = b.softmaxLoss(logits);
    addBackwardPass(b.graph(), loss);
    Graph g = b.finish();

    bool saw_addn = false;
    for (const auto &node : g.nodes())
        saw_addn |= node.type == OpType::AddN;
    EXPECT_TRUE(saw_addn)
        << "two gradient contributions should be summed with AddN";
}


TEST(AutodiffTest, PadAndTransposeBackwardOps)
{
    GraphBuilder b("pt", 4);
    NodeId x = b.imageInput(16, 16, 3);
    x = b.transpose(x, "fmt");
    x = b.pad(x, 2, "pad");
    ConvOptions options;
    options.batchNorm = false;
    options.relu = false;
    x = b.conv2d(x, 8, 3, 3, options, "conv");
    x = b.fullyConnected(x, 10, false, "logits");
    const NodeId loss = b.softmaxLoss(x);
    addBackwardPass(b.graph(), loss);
    Graph g = b.finish();

    std::map<OpType, int> counts;
    for (const auto &node : g.nodes())
        ++counts[node.type];
    // Pad backward is a Slice; Transpose backward is a Transpose.
    EXPECT_GE(counts[OpType::Slice], 1);
    EXPECT_EQ(counts[OpType::Transpose], 2);
    // Gradient of the pad input has the unpadded shape.
    for (const auto &node : g.nodes()) {
        if (node.type == OpType::Slice &&
            node.name.find("pad") != std::string::npos) {
            EXPECT_EQ(node.outputShape,
                      TensorShape::nhwc(4, 16, 16, 3));
        }
    }
}

TEST(AutodiffTest, LrnBackwardEmitsLrnGrad)
{
    GraphBuilder b("lrn", 4);
    NodeId x = b.imageInput(16, 16, 3);
    ConvOptions options;
    options.batchNorm = false;
    options.bias = true;
    x = b.conv2d(x, 8, 3, 3, options, "conv");
    x = b.lrn(x, "norm");
    x = b.fullyConnected(x, 10, false, "logits");
    const NodeId loss = b.softmaxLoss(x);
    addBackwardPass(b.graph(), loss);
    Graph g = b.finish();
    int lrn_grads = 0;
    for (const auto &node : g.nodes()) {
        if (node.type == OpType::LrnGrad) {
            ++lrn_grads;
            // LRNGrad reads grad, input and output: three inputs.
            EXPECT_EQ(node.inputs.size(), 3u);
        }
    }
    EXPECT_EQ(lrn_grads, 1);
}

TEST(AutodiffTest, GlobalAvgPoolBackwardIsTile)
{
    GraphBuilder b("gap", 4);
    NodeId x = b.imageInput(16, 16, 3);
    ConvOptions options;
    options.batchNorm = false;
    options.relu = false;
    x = b.conv2d(x, 8, 3, 3, options, "conv");
    const NodeId pooled = b.globalAvgPool(x, "gap");
    const NodeId logits = b.fullyConnected(pooled, 10, false, "logits");
    const NodeId loss = b.softmaxLoss(logits);
    addBackwardPass(b.graph(), loss);
    Graph g = b.finish();
    bool found = false;
    for (const auto &node : g.nodes()) {
        if (node.type == OpType::Tile &&
            node.name.find("gap") != std::string::npos) {
            found = true;
            EXPECT_EQ(node.outputShape, TensorShape::nhwc(4, 16, 16, 8));
        }
    }
    EXPECT_TRUE(found);
}

TEST(AutodiffTest, ConcatBackwardSlicesPerBranch)
{
    GraphBuilder b("cc", 4);
    NodeId x = b.imageInput(8, 8, 3);
    ConvOptions options;
    options.batchNorm = false;
    options.relu = false;
    const NodeId a = b.conv2d(x, 4, 1, 1, options, "a");
    const NodeId c = b.conv2d(x, 6, 1, 1, options, "c");
    const NodeId d = b.conv2d(x, 10, 1, 1, options, "d");
    const NodeId concat = b.concat({a, c, d}, "mixed");
    const NodeId logits = b.fullyConnected(concat, 10, false, "logits");
    const NodeId loss = b.softmaxLoss(logits);
    addBackwardPass(b.graph(), loss);
    Graph g = b.finish();

    std::vector<std::int64_t> slice_channels;
    for (const auto &node : g.nodes()) {
        if (node.type == OpType::Slice &&
            node.name.find("mixed") != std::string::npos) {
            slice_channels.push_back(node.outputShape.channels());
        }
    }
    std::sort(slice_channels.begin(), slice_channels.end());
    EXPECT_EQ(slice_channels, (std::vector<std::int64_t>{4, 6, 10}));
}

TEST(AutodiffTest, ScaleBackwardStaysInGraph)
{
    GraphBuilder b("sc", 4);
    NodeId x = b.imageInput(8, 8, 3);
    ConvOptions options;
    options.batchNorm = false;
    options.relu = false;
    NodeId y = b.conv2d(x, 4, 1, 1, options, "conv");
    y = b.scale(y, "scaled");
    const NodeId logits = b.fullyConnected(y, 10, false, "logits");
    const NodeId loss = b.softmaxLoss(logits);
    const std::size_t added = addBackwardPass(b.graph(), loss);
    EXPECT_GT(added, 5u);
    Graph g = b.finish();
    // The scale Mul gets a Mul gradient flowing into the conv path.
    bool saw_mul_grad = false;
    for (const auto &node : g.nodes()) {
        saw_mul_grad |= node.type == OpType::Mul && node.isGradient;
    }
    EXPECT_TRUE(saw_mul_grad);
}

TEST(AutodiffTest, LossMustBeScalar)
{
    GraphBuilder b("bad", 4);
    const NodeId x = b.imageInput(8, 8, 3);
    Graph &g = b.graph();
    EXPECT_DEATH(addBackwardPass(g, x), "scalar");
}

TEST(AutodiffTest, NoGradientsFlowIntoEvalBranch)
{
    Graph g = tinyTrainedNet();
    // The eval Softmax must have no grad consumers: nothing downstream
    // of it should be a gradient op consuming its id.
    NodeId softmax = kInvalidNode;
    for (const auto &node : g.nodes())
        if (node.type == OpType::Softmax)
            softmax = node.id;
    ASSERT_NE(softmax, kInvalidNode);
    for (const auto &node : g.nodes()) {
        if (node.name.rfind("grad/eval", 0) == 0)
            FAIL() << "gradient op in eval branch: " << node.name;
    }
}

} // namespace
} // namespace graph
} // namespace ceer
