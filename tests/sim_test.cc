/**
 * @file
 * Tests for the training simulator: determinism, data-parallel
 * behaviour, scaling against the paper's Fig. 6 numbers, and the
 * full-training estimate arithmetic.
 */

#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "models/model_zoo.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace ceer {
namespace sim {
namespace {

using graph::Graph;

/** Bit pattern of a double, for byte-identity assertions. */
std::uint64_t
bitsOf(double x)
{
    std::uint64_t u;
    std::memcpy(&u, &x, sizeof u);
    return u;
}

/** Asserts two RunningStats are byte-identical, not merely close. */
void
expectStatsBitIdentical(const util::RunningStats &a,
                        const util::RunningStats &b)
{
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(bitsOf(a.mean()), bitsOf(b.mean()));
    EXPECT_EQ(bitsOf(a.stddev()), bitsOf(b.stddev()));
    EXPECT_EQ(bitsOf(a.min()), bitsOf(b.min()));
    EXPECT_EQ(bitsOf(a.max()), bitsOf(b.max()));
}

const Graph &
inceptionV1()
{
    static const Graph g = models::buildInceptionV1(32);
    return g;
}

TEST(SimulatorTest, DeterministicForSameSeed)
{
    SimConfig config;
    config.seed = 99;
    TrainingSimulator a(inceptionV1(), config);
    TrainingSimulator b(inceptionV1(), config);
    for (int i = 0; i < 5; ++i) {
        const IterationResult ra = a.runIteration();
        const IterationResult rb = b.runIteration();
        EXPECT_DOUBLE_EQ(ra.computeUs, rb.computeUs);
        EXPECT_DOUBLE_EQ(ra.commUs, rb.commUs);
    }
}

TEST(SimulatorTest, DifferentSeedsDiffer)
{
    SimConfig a_config, b_config;
    a_config.seed = 1;
    b_config.seed = 2;
    TrainingSimulator a(inceptionV1(), a_config);
    TrainingSimulator b(inceptionV1(), b_config);
    EXPECT_NE(a.runIteration().computeUs, b.runIteration().computeUs);
}

TEST(SimulatorTest, ObserverSeesEveryNode)
{
    SimConfig config;
    TrainingSimulator simulator(inceptionV1(), config);
    std::size_t observed = 0;
    double observed_total = 0.0;
    const IterationResult result = simulator.runIteration(
        [&](const graph::Node &, double t) {
            ++observed;
            observed_total += t;
        });
    EXPECT_EQ(observed, inceptionV1().size());
    // Single replica: observed sum is exactly the compute part.
    EXPECT_DOUBLE_EQ(observed_total, result.computeUs);
}

TEST(SimulatorTest, IterationTimeRankingAcrossGpus)
{
    // P3 < G4 < G3 < P2 per-iteration (paper Sec. III).
    std::map<hw::GpuModel, double> mean;
    for (hw::GpuModel gpu : hw::allGpuModels()) {
        SimConfig config;
        config.gpu = gpu;
        TrainingSimulator simulator(inceptionV1(), config);
        mean[gpu] = simulator.run(10).iterationUs.mean();
    }
    EXPECT_LT(mean[hw::GpuModel::V100], mean[hw::GpuModel::T4]);
    EXPECT_LT(mean[hw::GpuModel::T4], mean[hw::GpuModel::M60]);
    EXPECT_LT(mean[hw::GpuModel::M60], mean[hw::GpuModel::K80]);
}

TEST(SimulatorTest, MultiGpuIterationSlowerButTrainingFaster)
{
    for (int k : {2, 3, 4}) {
        SimConfig single, multi;
        multi.numGpus = k;
        TrainingSimulator s1(inceptionV1(), single);
        TrainingSimulator sk(inceptionV1(), multi);
        const double t1 = s1.run(15).iterationUs.mean();
        const double tk = sk.run(15).iterationUs.mean();
        // Per-iteration: slower (comm overhead). Per-sample: faster.
        EXPECT_GT(tk, t1);
        EXPECT_LT(tk / static_cast<double>(k), t1);
    }
}

TEST(SimulatorTest, Fig6ScalingReductionsNearPaper)
{
    // Paper Fig. 6: training-time reductions for Inception-v1 vs 1 GPU
    // average ~35.8% (k=2), ~46.6% (k=3), ~53.6% (k=4) across GPUs.
    double reduction[3] = {0, 0, 0};
    for (hw::GpuModel gpu : hw::allGpuModels()) {
        SimConfig config;
        config.gpu = gpu;
        TrainingSimulator s1(inceptionV1(), config);
        const double t1 = s1.run(25).iterationUs.mean();
        for (int k = 2; k <= 4; ++k) {
            SimConfig multi = config;
            multi.numGpus = k;
            TrainingSimulator sk(inceptionV1(), multi);
            const double tk = sk.run(25).iterationUs.mean();
            reduction[k - 2] += 1.0 - tk / (k * t1);
        }
    }
    for (auto &value : reduction)
        value /= 4.0;
    EXPECT_NEAR(reduction[0], 0.358, 0.06);
    EXPECT_NEAR(reduction[1], 0.466, 0.06);
    EXPECT_NEAR(reduction[2], 0.536, 0.06);
}

TEST(SimulatorTest, ParamAndInputBytesExposed)
{
    SimConfig config;
    TrainingSimulator simulator(inceptionV1(), config);
    EXPECT_DOUBLE_EQ(
        simulator.paramBytes(),
        static_cast<double>(inceptionV1().totalParameters()) * 4.0);
    // Input batch: 32 x 224 x 224 x 3 floats plus the tiny label
    // vector (all graph tensors are fp32-sized here).
    const double image_bytes = 32.0 * 224 * 224 * 3 * 4;
    EXPECT_NEAR(simulator.inputBytes(), image_bytes, 300.0);
}

TEST(SimulatorTest, MeanIterationTracksSampledMean)
{
    SimConfig config;
    TrainingSimulator simulator(inceptionV1(), config);
    const double analytic = simulator.meanIterationUs();
    const double sampled = simulator.run(40).iterationUs.mean();
    EXPECT_NEAR(sampled, analytic, 0.06 * analytic);
}

TEST(SimulateTrainingTest, IterationCountArithmetic)
{
    SimConfig config;
    config.numGpus = 4;
    const TrainingRunEstimate estimate =
        simulateTraining(inceptionV1(), config, 6400, 32, 10);
    // 6400 samples / (4 GPUs * batch 32) = 50 iterations.
    EXPECT_EQ(estimate.iterations, 50);
    EXPECT_NEAR(estimate.totalHours,
                estimate.meanIterationUs * 50 / 3.6e9, 1e-12);
}

TEST(SimulateTrainingTest, RoundsUpPartialIterations)
{
    SimConfig config;
    const TrainingRunEstimate estimate =
        simulateTraining(inceptionV1(), config, 100, 32, 4);
    EXPECT_EQ(estimate.iterations, 4); // ceil(100/32).
}

TEST(SimulatorTest, ParallelRunIsByteIdenticalToSerial)
{
    // The determinism contract of the counter-based kernel: RunStats
    // from run(n, threads) are byte-identical at every thread count,
    // including counts above the hardware (iterations are chunked and
    // merged in a fixed order regardless of which thread ran what).
    SimConfig config;
    config.seed = 1234;
    config.numGpus = 2;
    const int iters = 97; // deliberately not a multiple of the chunk
    TrainingSimulator serial(inceptionV1(), config);
    const RunStats reference = serial.run(iters, 1);
    for (int threads : {2, 4, 8}) {
        TrainingSimulator parallel(inceptionV1(), config);
        const RunStats stats = parallel.run(iters, threads);
        SCOPED_TRACE(threads);
        expectStatsBitIdentical(stats.iterationUs, reference.iterationUs);
        expectStatsBitIdentical(stats.computeUs, reference.computeUs);
        expectStatsBitIdentical(stats.commUs, reference.commUs);
    }
}

TEST(SimulatorTest, RunIsByteIdenticalWithObservabilityOn)
{
    // Instrumentation must never feed back into the computation: the
    // same run with metrics recording enabled reproduces the disabled
    // run bit for bit, at every thread count.
    SimConfig config;
    config.seed = 4242;
    config.numGpus = 2;
    const int iters = 61;
    for (int threads : {1, 2, 4}) {
        SCOPED_TRACE(threads);
        RunStats off_stats, on_stats;
        {
            obs::ScopedEnable off(false);
            TrainingSimulator simulator(inceptionV1(), config);
            off_stats = simulator.run(iters, threads);
        }
        {
            obs::ScopedEnable on(true);
            TrainingSimulator simulator(inceptionV1(), config);
            on_stats = simulator.run(iters, threads);
        }
        expectStatsBitIdentical(on_stats.iterationUs,
                                off_stats.iterationUs);
        expectStatsBitIdentical(on_stats.computeUs,
                                off_stats.computeUs);
        expectStatsBitIdentical(on_stats.commUs, off_stats.commUs);
    }
}

TEST(SimulatorTest, IterationAtIsOrderIndependent)
{
    // iterationAt(k) is a pure function of (config, k): evaluating
    // iterations in reverse must reproduce the forward runIteration
    // stream bit for bit.
    SimConfig config;
    config.seed = 7;
    TrainingSimulator walker(inceptionV1(), config);
    IterationResult forward[6];
    for (int i = 0; i < 6; ++i)
        forward[i] = walker.runIteration();
    TrainingSimulator random_access(inceptionV1(), config);
    for (int i = 5; i >= 0; --i) {
        const IterationResult r = random_access.iterationAt(i);
        EXPECT_EQ(bitsOf(r.computeUs), bitsOf(forward[i].computeUs));
        EXPECT_EQ(bitsOf(r.commUs), bitsOf(forward[i].commUs));
    }
}

TEST(SimulatorTest, InvalidConfigDies)
{
    SimConfig config;
    config.numGpus = 0;
    EXPECT_DEATH(TrainingSimulator(inceptionV1(), config), "numGpus");
    SimConfig ok;
    TrainingSimulator simulator(inceptionV1(), ok);
    EXPECT_DEATH(simulator.run(0), "iterations");
}

} // namespace
} // namespace sim
} // namespace ceer
