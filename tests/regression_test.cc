/**
 * @file
 * Tests for the regression primitives: linear solves, OLS fits,
 * feature scaling, R^2, quadratic expansion and serialization.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/regression.h"
#include "util/random.h"

namespace ceer {
namespace core {
namespace {

TEST(SolveTest, SolvesKnownSystem)
{
    // 2x + y = 5; x - y = 1 -> x = 2, y = 1.
    const auto x = solveLinearSystem({{2, 1}, {1, -1}}, {5, 1});
    ASSERT_EQ(x.size(), 2u);
    EXPECT_NEAR(x[0], 2.0, 1e-12);
    EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SolveTest, PivotsOnZeroDiagonal)
{
    // First pivot is zero; partial pivoting must handle it.
    const auto x = solveLinearSystem({{0, 1}, {1, 0}}, {3, 4});
    EXPECT_NEAR(x[0], 4.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveTest, SingularMatrixDies)
{
    EXPECT_DEATH(solveLinearSystem({{1, 1}, {2, 2}}, {1, 2}),
                 "singular");
}

TEST(LinearModelTest, RecoversExactLinearRelation)
{
    std::vector<std::vector<double>> X;
    std::vector<double> y;
    for (double a = 0; a < 10; ++a) {
        for (double b = 0; b < 5; ++b) {
            X.push_back({a, b});
            y.push_back(3.0 * a - 2.0 * b + 7.0);
        }
    }
    const LinearModel model = LinearModel::fit(X, y);
    EXPECT_NEAR(model.predict({4.0, 1.0}), 17.0, 1e-6);
    EXPECT_NEAR(model.rSquared(X, y), 1.0, 1e-9);
    const auto weights = model.weights();
    EXPECT_NEAR(weights[0], 3.0, 1e-6);
    EXPECT_NEAR(weights[1], -2.0, 1e-6);
    EXPECT_NEAR(model.intercept(), 7.0, 1e-5);
}

TEST(LinearModelTest, HandlesByteScaleFeatures)
{
    // Features at 1e8 scale (bytes) must stay well conditioned.
    std::vector<std::vector<double>> X;
    std::vector<double> y;
    util::Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        const double bytes = rng.uniform(1e6, 2e8);
        X.push_back({bytes});
        y.push_back(12.0 + bytes / 65e3 + rng.normal(0.0, 2.0));
    }
    const LinearModel model = LinearModel::fit(X, y);
    EXPECT_GT(model.rSquared(X, y), 0.999);
    EXPECT_NEAR(model.predict({1e8}), 12.0 + 1e8 / 65e3,
                0.01 * (12.0 + 1e8 / 65e3));
}

TEST(LinearModelTest, ToleratesCollinearFeatures)
{
    // Second feature is an exact multiple of the first; ridge keeps
    // the normal equations solvable.
    std::vector<std::vector<double>> X;
    std::vector<double> y;
    for (double a = 1; a <= 50; ++a) {
        X.push_back({a, 2.0 * a});
        y.push_back(5.0 * a + 1.0);
    }
    const LinearModel model = LinearModel::fit(X, y);
    EXPECT_GT(model.rSquared(X, y), 0.999);
    EXPECT_NEAR(model.predict({10.0, 20.0}), 51.0, 0.5);
}

TEST(LinearModelTest, RSquaredOfMeanPredictorIsZero)
{
    std::vector<std::vector<double>> X{{1}, {2}, {3}, {4}};
    std::vector<double> y{10, -10, 10, -10};
    const LinearModel model = LinearModel::fit(X, y);
    // The best line through this data is ~the mean; R^2 near 0.
    EXPECT_LT(model.rSquared(X, y), 0.3);
}

TEST(QuadraticTest, ExpansionAppendsSquares)
{
    const auto expanded = quadraticExpand({2.0, 3.0});
    ASSERT_EQ(expanded.size(), 4u);
    EXPECT_DOUBLE_EQ(expanded[2], 4.0);
    EXPECT_DOUBLE_EQ(expanded[3], 9.0);
}

TEST(QuadraticTest, CapturesQuadraticRelation)
{
    std::vector<std::vector<double>> X;
    std::vector<double> y;
    for (double a = 0; a < 40; ++a) {
        X.push_back({a});
        y.push_back(0.5 * a * a + 2.0 * a + 3.0);
    }
    const LinearModel linear = LinearModel::fit(X, y);
    const auto expanded = quadraticExpandAll(X);
    const LinearModel quadratic = LinearModel::fit(expanded, y);
    EXPECT_LT(linear.rSquared(X, y), 0.99);
    EXPECT_GT(quadratic.rSquared(expanded, y), 0.9999);
    EXPECT_NEAR(quadratic.predict(quadraticExpand({10.0})), 73.0, 0.1);
}

TEST(LinearModelTest, SerializeRoundTrip)
{
    std::vector<std::vector<double>> X;
    std::vector<double> y;
    util::Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        const double a = rng.uniform(0, 1e7);
        const double b = rng.uniform(0, 1e3);
        X.push_back({a, b});
        y.push_back(1e-4 * a + 2.5 * b + 17.0);
    }
    const LinearModel model = LinearModel::fit(X, y);
    const LinearModel restored =
        LinearModel::deserialize(model.serialize());
    for (const auto &row : X)
        EXPECT_NEAR(restored.predict(row), model.predict(row),
                    1e-9 * std::abs(model.predict(row)) + 1e-12);
}

TEST(LinearModelTest, MismatchedArityDies)
{
    const LinearModel model =
        LinearModel::fit({{1.0, 2.0}}, {3.0});
    EXPECT_DEATH(model.predict({1.0}), "arity");
    EXPECT_DEATH(LinearModel::fit({}, {}), "empty");
}

TEST(LinearModelTest, DeserializeRejectsNonPositiveScale)
{
    // predict() divides by the per-feature scales; a zero or negative
    // scale used to load fine and then silently produce ±inf/NaN
    // predictions. Such a model must be rejected at the boundary.
    EXPECT_DEATH(LinearModel::deserialize("1;2,0"), "scale");
    EXPECT_DEATH(LinearModel::deserialize("1;2,-3"), "scale");
    EXPECT_DEATH(LinearModel::deserialize("1;2,inf"), "scale");
    EXPECT_DEATH(LinearModel::deserialize("1;2,nan"), "scale");
}

TEST(LinearModelTest, TryDeserializeReportsMalformedText)
{
    LinearModel model;
    std::string error;
    EXPECT_FALSE(LinearModel::tryDeserialize("abc", &model, &error));
    EXPECT_NE(error.find("intercept"), std::string::npos);
    EXPECT_FALSE(LinearModel::tryDeserialize("1;x,2", &model, &error));
    EXPECT_NE(error.find("weight"), std::string::npos);
    EXPECT_FALSE(LinearModel::tryDeserialize("1;2", &model, &error));
    EXPECT_NE(error.find("term"), std::string::npos);
    EXPECT_FALSE(LinearModel::tryDeserialize("", &model, &error));
    EXPECT_NE(error.find("empty"), std::string::npos);

    ASSERT_TRUE(LinearModel::tryDeserialize("1.5;2,4", &model, &error));
    // b + w * (x / s) = 1.5 + 2 * (8 / 4) = 5.5.
    EXPECT_DOUBLE_EQ(model.predict({8.0}), 5.5);
}

TEST(LinearModelTest, DeserializeFailureLeavesModelUntouched)
{
    LinearModel model;
    std::string error;
    ASSERT_TRUE(LinearModel::tryDeserialize("1;2,4", &model, &error));
    EXPECT_FALSE(
        LinearModel::tryDeserialize("9;8,garbage", &model, &error));
    // The earlier valid state survives a failed re-load.
    EXPECT_DOUBLE_EQ(model.predict({4.0}), 3.0);
}

} // namespace
} // namespace core
} // namespace ceer
