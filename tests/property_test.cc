/**
 * @file
 * Property-style tests: parameterized sweeps asserting invariants of
 * shape inference, the cost model, the timing model, the interconnect
 * model and the regression machinery across wide input grids.
 */

#include <cmath>
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "baselines/evaluate.h"
#include "baselines/predictor.h"
#include "core/regression.h"
#include "graph/shape_inference.h"
#include "hw/device_model.h"
#include "hw/interconnect.h"
#include "hw/op_cost.h"
#include "models/model_zoo.h"
#include "profile/profiler.h"
#include "util/random.h"

namespace ceer {
namespace {

using graph::Node;
using graph::OpAttrs;
using graph::OpType;
using graph::PaddingMode;
using graph::TensorShape;
using hw::GpuModel;

// --- Shape-inference sweep: SAME/VALID over kernel x stride grids ---

struct ConvCase
{
    int input;
    int kernel;
    int stride;
};

class ConvDimSweep : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(ConvDimSweep, SamePaddingIsCeilDiv)
{
    const auto &c = GetParam();
    const std::int64_t out =
        graph::convOutputDim(c.input, c.kernel, c.stride,
                             PaddingMode::Same);
    EXPECT_EQ(out, (c.input + c.stride - 1) / c.stride);
}

TEST_P(ConvDimSweep, ValidPaddingNeverExceedsSame)
{
    const auto &c = GetParam();
    if (c.kernel > c.input)
        return; // VALID undefined; covered by death tests.
    const std::int64_t valid = graph::convOutputDim(
        c.input, c.kernel, c.stride, PaddingMode::Valid);
    const std::int64_t same = graph::convOutputDim(
        c.input, c.kernel, c.stride, PaddingMode::Same);
    EXPECT_LE(valid, same);
    EXPECT_GE(valid, 1);
    // Every output position must map inside the input.
    EXPECT_LE((valid - 1) * c.stride + c.kernel, c.input);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConvDimSweep,
    ::testing::Values(ConvCase{224, 3, 1}, ConvCase{224, 3, 2},
                      ConvCase{224, 7, 2}, ConvCase{227, 11, 4},
                      ConvCase{299, 3, 2}, ConvCase{35, 3, 1},
                      ConvCase{17, 7, 1}, ConvCase{8, 3, 1},
                      ConvCase{56, 1, 1}, ConvCase{56, 1, 2},
                      ConvCase{299, 5, 3}, ConvCase{11, 11, 4}),
    [](const auto &info) {
        return "in" + std::to_string(info.param.input) + "_k" +
               std::to_string(info.param.kernel) + "_s" +
               std::to_string(info.param.stride);
    });

// --- Cost-model invariants across op categories ---

Node
convNode(std::int64_t batch, int hw_dim, int channels, int kernel,
         int stride)
{
    OpAttrs attrs;
    attrs.kernelH = attrs.kernelW = kernel;
    attrs.strideH = attrs.strideW = stride;
    attrs.filterShape = TensorShape{kernel, kernel, channels, channels};
    Node node;
    node.type = OpType::Conv2D;
    node.inputShapes = {TensorShape::nhwc(batch, hw_dim, hw_dim,
                                          channels),
                        attrs.filterShape};
    node.outputShape = graph::conv2dOutputShape(
        node.inputShapes[0], channels, kernel, kernel, stride,
        PaddingMode::Same);
    node.attrs = attrs;
    return node;
}

class BatchLinearitySweep : public ::testing::TestWithParam<int>
{
};

TEST_P(BatchLinearitySweep, ConvFlopsScaleLinearlyWithBatch)
{
    const int kernel = GetParam();
    const hw::OpCost at8 = hw::opCost(convNode(8, 28, 64, kernel, 1));
    const hw::OpCost at32 = hw::opCost(convNode(32, 28, 64, kernel, 1));
    EXPECT_NEAR(at32.flops / at8.flops, 4.0, 1e-9);
    // Bytes are *sub*-linear in batch: the filter term is fixed.
    EXPECT_LE(at32.bytes, 4.0 * at8.bytes);
    EXPECT_GT(at32.bytes, at8.bytes);
}

TEST_P(BatchLinearitySweep, StrideReducesWork)
{
    const int kernel = GetParam();
    const hw::OpCost s1 = hw::opCost(convNode(16, 56, 64, kernel, 1));
    const hw::OpCost s2 = hw::opCost(convNode(16, 56, 64, kernel, 2));
    EXPECT_NEAR(s1.flops / s2.flops, 4.0, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Kernels, BatchLinearitySweep,
                         ::testing::Values(1, 3, 5, 7),
                         [](const auto &info) {
                             return "k" + std::to_string(info.param);
                         });

TEST(CostSymmetryTest, BackwardConvMatchesForwardMacs)
{
    // Fwd, BackpropInput and BackpropFilter perform the same MACs.
    const Node fwd = convNode(32, 28, 64, 3, 1);
    Node bwd_input = fwd;
    bwd_input.type = OpType::Conv2DBackpropInput;
    Node bwd_filter = fwd;
    bwd_filter.type = OpType::Conv2DBackpropFilter;
    bwd_filter.inputShapes = {fwd.inputShapes[0], fwd.outputShape};
    bwd_filter.outputShape = fwd.attrs.filterShape;

    const double f = hw::opCost(fwd).flops;
    EXPECT_NEAR(hw::opCost(bwd_input).flops / f, 1.0, 1e-9);
    EXPECT_NEAR(hw::opCost(bwd_filter).flops / f, 1.0, 1e-9);
}

// --- Timing monotonicity across GPUs and sizes ---

class GpuSweep : public ::testing::TestWithParam<GpuModel>
{
};

TEST_P(GpuSweep, TimeMonotoneInProblemSize)
{
    // 2x more elements dominates the +-10% instance wobble.
    hw::GpuTimingModel model(GetParam());
    double previous = 0.0;
    for (int hw_dim : {14, 20, 28, 40, 56, 80, 112}) {
        const double t = model.meanTimeUs(convNode(16, hw_dim, 32, 3, 1));
        EXPECT_GT(t, previous) << "at " << hw_dim;
        previous = t;
    }
}

TEST_P(GpuSweep, LaunchOverheadIsTheFloor)
{
    hw::GpuTimingModel model(GetParam());
    Node tiny;
    tiny.type = OpType::Identity;
    tiny.inputShapes = {TensorShape{1}};
    tiny.outputShape = TensorShape{1};
    EXPECT_GE(model.meanTimeUs(tiny),
              hw::gpuSpec(GetParam()).kernelLaunchUs * 0.99);
}

TEST_P(GpuSweep, SigmaWithinDesignRange)
{
    hw::GpuTimingModel model(GetParam());
    for (int hw_dim : {7, 14, 28, 56, 112}) {
        const Node node = convNode(32, hw_dim, 64, 3, 1);
        const double sigma = model.instanceSigma(node);
        EXPECT_GE(sigma, 0.012);
        EXPECT_LE(sigma, 0.112);
        const double effective = model.effectiveSigma(node);
        EXPECT_GE(effective, sigma);
        EXPECT_LE(effective, 0.40);
    }
}

TEST_P(GpuSweep, CommOverheadMonotoneInParamsAndGpus)
{
    const GpuModel gpu = GetParam();
    double previous_k = 0.0;
    for (int k = 1; k <= 6; ++k) {
        const double at_k =
            hw::commOverheadUs(gpu, k, 50e6 * 4, 20e6);
        EXPECT_GT(at_k, previous_k * 0.99) << "k=" << k;
        previous_k = at_k;
        double previous_p = 0.0;
        for (double params_m : {5.0, 25.0, 60.0, 145.0}) {
            const double overhead = hw::commOverheadUs(
                gpu, k, params_m * 1e6 * 4, 20e6);
            EXPECT_GT(overhead, previous_p)
                << "k=" << k << " params=" << params_m;
            previous_p = overhead;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllGpus, GpuSweep,
                         ::testing::ValuesIn(hw::allGpuModels()),
                         [](const auto &info) {
                             return hw::gpuModelName(info.param);
                         });

// --- Regression recovery sweep over feature dimensions ---

class RegressionDimSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RegressionDimSweep, RecoversPlantedLinearModel)
{
    const int dim = GetParam();
    util::Rng rng(1000 + dim);
    std::vector<double> weights;
    for (int j = 0; j < dim; ++j)
        weights.push_back(rng.uniform(-5.0, 5.0));
    const double intercept = rng.uniform(-100.0, 100.0);

    std::vector<std::vector<double>> X;
    std::vector<double> y;
    for (int i = 0; i < 60 * dim; ++i) {
        std::vector<double> row;
        double target = intercept;
        for (int j = 0; j < dim; ++j) {
            // Feature scales spanning 6 orders of magnitude.
            const double value =
                rng.uniform(0.0, std::pow(10.0, 2 + j));
            row.push_back(value);
            target += weights[static_cast<std::size_t>(j)] * value;
        }
        X.push_back(std::move(row));
        y.push_back(target + rng.normal(0.0, 0.5));
    }
    const core::LinearModel model = core::LinearModel::fit(X, y);
    EXPECT_GT(model.rSquared(X, y), 0.999);
    const auto recovered = model.weights();
    for (int j = 0; j < dim; ++j) {
        EXPECT_NEAR(recovered[static_cast<std::size_t>(j)],
                    weights[static_cast<std::size_t>(j)],
                    0.05 + 0.02 * std::abs(weights[j]))
            << "dim " << j;
    }
}

INSTANTIATE_TEST_SUITE_P(Dims, RegressionDimSweep,
                         ::testing::Values(1, 2, 3, 4, 6),
                         [](const auto &info) {
                             return "d" + std::to_string(info.param);
                         });

// --- Predictor contract: every registered baseline engine ---
//
// The baselines::Predictor documentation promises that after
// trainFrom() every engine is deterministic, finite and non-negative
// on the whole model zoo, and monotone non-decreasing in the
// data-parallel width. These sweeps hold each registered engine to
// that contract, so a new engine cannot land without inheriting it.

class PredictorContract : public ::testing::TestWithParam<std::string>
{
  protected:
    /** A small shared training dataset (2 CNNs, all four GPUs). */
    static const profile::ProfileDataset &
    dataset()
    {
        static const profile::ProfileDataset d = [] {
            profile::CollectOptions options;
            options.iterations = 10;
            return profile::collectProfiles({"vgg_11", "inception_v1"},
                                            options);
        }();
        return d;
    }

    /**
     * The whole zoo, built once and kept alive for the suite: the
     * plan-memoizing engines key on graph addresses, so per-test
     * stack graphs would alias across iterations.
     */
    static const std::vector<graph::Graph> &
    zoo()
    {
        static const std::vector<graph::Graph> z = [] {
            std::vector<graph::Graph> graphs;
            graphs.reserve(models::allModelNames().size());
            for (const std::string &name : models::allModelNames())
                graphs.push_back(models::buildModel(name, 32));
            return graphs;
        }();
        return z;
    }
};

TEST_P(PredictorContract, FiniteDeterministicAndMonotoneInK)
{
    const std::unique_ptr<baselines::Predictor> predictor =
        baselines::makePredictor(GetParam());
    EXPECT_EQ(predictor->name(), GetParam());
    predictor->trainFrom(dataset());
    for (std::size_t m = 0; m < zoo().size(); ++m) {
        const graph::Graph &g = zoo()[m];
        for (const hw::GpuModel gpu : hw::allGpuModels()) {
            double previous = 0.0;
            for (const int k : {1, 2, 4, 8}) {
                const double us =
                    predictor->predictIterationUs(g, gpu, k);
                EXPECT_TRUE(std::isfinite(us))
                    << models::allModelNames()[m] << " k=" << k;
                EXPECT_GE(us, 0.0)
                    << models::allModelNames()[m] << " k=" << k;
                EXPECT_GE(us, previous)
                    << models::allModelNames()[m]
                    << ": prediction decreased from k=" << k;
                EXPECT_EQ(us, predictor->predictIterationUs(g, gpu, k))
                    << models::allModelNames()[m]
                    << ": repeated call differed at k=" << k;
                previous = us;
            }
        }
    }
}

TEST_P(PredictorContract, RetrainingIsIdempotent)
{
    const std::unique_ptr<baselines::Predictor> predictor =
        baselines::makePredictor(GetParam());
    predictor->trainFrom(dataset());
    const double first = predictor->predictIterationUs(
        zoo()[0], hw::GpuModel::V100, 4);
    predictor->trainFrom(dataset());
    EXPECT_EQ(first, predictor->predictIterationUs(
                         zoo()[0], hw::GpuModel::V100, 4));
}

TEST_P(PredictorContract, EvaluationReportIsThreadInvariant)
{
    const std::unique_ptr<baselines::Predictor> predictor =
        baselines::makePredictor(GetParam());
    baselines::EvalOptions options;
    options.models = {"alexnet", "inception_v1"};
    options.ks = {1, 2, 4};
    options.evalIterations = 6;
    std::string baseline;
    for (const int threads : {1, 2, 4, 8}) {
        options.threads = threads;
        const baselines::EvalReport report = baselines::runEvaluation(
            dataset(), {predictor.get()}, options);
        std::ostringstream csv;
        report.saveCsv(csv);
        if (threads == 1)
            baseline = csv.str();
        else
            EXPECT_EQ(baseline, csv.str())
                << "report differs at " << threads << " threads";
    }
    EXPECT_FALSE(baseline.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Engines, PredictorContract,
    ::testing::ValuesIn(baselines::allPredictorNames()),
    [](const auto &info) { return info.param; });

} // namespace
} // namespace ceer
