/**
 * @file
 * Tests for the profiling layer: feature extraction, per-instance
 * aggregation, dataset queries, CSV round-trip, and the paper-level
 * properties of collected profiles (heavy-op variability, light-op
 * contribution).
 */

#include <sstream>

#include <gtest/gtest.h>

#include "models/model_zoo.h"
#include "obs/metrics.h"
#include "profile/features.h"
#include "profile/profiler.h"

namespace ceer {
namespace profile {
namespace {

using graph::Graph;
using graph::OpType;

/** Small dataset fixture shared by the pricier tests. */
const ProfileDataset &
smallDataset()
{
    static const ProfileDataset dataset = [] {
        CollectOptions options;
        options.iterations = 30;
        options.maxGpus = 2;
        return collectProfiles({"inception_v1", "vgg_11"}, options);
    }();
    return dataset;
}

TEST(FeaturesTest, ShapeAndContent)
{
    const Graph g = models::buildInceptionV1(8);
    for (const auto &node : g.nodes()) {
        const auto features = opFeatures(node);
        ASSERT_EQ(features.size(), kNumOpFeatures);
        EXPECT_DOUBLE_EQ(features[0],
                         static_cast<double>(node.inputBytes()));
        if (!node.inputShapes.empty()) {
            EXPECT_DOUBLE_EQ(
                features[1],
                static_cast<double>(node.inputShapes[0].numBytes()));
        }
        EXPECT_GE(features[3], 0.0);
    }
}

TEST(FeaturesTest, InstanceKeyGroupsIdenticalOps)
{
    const Graph g = models::buildVgg(16, 8);
    // VGG-16 stage 4 and 5 convs share shapes: keys must collide for
    // identical instances and differ across types.
    std::map<std::string, int> keys;
    for (const auto &node : g.nodes())
        ++keys[opInstanceKey(node)];
    EXPECT_LT(keys.size(), g.size());
    bool found_repeat = false;
    for (const auto &[key, count] : keys)
        found_repeat |= count > 1;
    EXPECT_TRUE(found_repeat);
}

TEST(ProfilerTest, AggregatesEveryExecution)
{
    const Graph g = models::buildInceptionV1(8);
    sim::SimConfig config;
    auto [profiles, run] = profileRun(g, "inception_v1", config, 12);

    std::size_t occurrences = 0;
    std::size_t executions = 0;
    for (const auto &profile : profiles) {
        occurrences += profile.occurrences;
        executions += profile.timeUs.count();
        EXPECT_GT(profile.timeUs.mean(), 0.0);
        EXPECT_EQ(profile.timeUs.count(),
                  profile.occurrences * 12);
    }
    EXPECT_EQ(occurrences, g.size());
    EXPECT_EQ(executions, g.size() * 12);
    EXPECT_EQ(run.paramCount, g.totalParameters());
    EXPECT_GT(run.meanIterationUs, 0.0);
    EXPECT_GT(run.meanCommUs, 0.0);
    EXPECT_NEAR(run.meanIterationUs,
                run.meanComputeUs + run.meanCommUs, 1e-6);
}

TEST(ProfilerTest, HeavyInstancesHaveLowVariability)
{
    const Graph g = models::buildVgg(11, 32);
    sim::SimConfig config;
    config.gpu = hw::GpuModel::K80;
    auto [profiles, run] = profileRun(g, "vgg_11", config, 60);

    // Paper Fig. 5: for heavy instances (>= 0.5ms on P2), ~95% have
    // normalized stddev < 0.1.
    std::size_t heavy = 0, low_var = 0;
    for (const auto &profile : profiles) {
        if (profile.onCpu || profile.timeUs.mean() < 500.0)
            continue;
        ++heavy;
        low_var += profile.timeUs.normalizedStddev() < 0.1;
    }
    ASSERT_GT(heavy, 10u);
    EXPECT_GE(static_cast<double>(low_var) / static_cast<double>(heavy),
              0.8);
}

TEST(ProfilerTest, CpuOpsHaveHighVariability)
{
    const Graph g = models::buildAlexNet(32);
    sim::SimConfig config;
    auto [profiles, run] = profileRun(g, "alexnet", config, 80);
    for (const auto &profile : profiles) {
        if (!profile.onCpu)
            continue;
        EXPECT_GT(profile.timeUs.normalizedStddev(), 0.25)
            << graph::opTypeName(profile.op);
    }
}

TEST(DatasetTest, QueriesFilterCorrectly)
{
    const ProfileDataset &dataset = smallDataset();
    const auto v100_ops = dataset.opsFor(hw::GpuModel::V100);
    ASSERT_FALSE(v100_ops.empty());
    for (const auto *profile : v100_ops)
        EXPECT_EQ(profile->gpu, hw::GpuModel::V100);

    const auto convs =
        dataset.opsFor(hw::GpuModel::K80, OpType::Conv2D);
    ASSERT_FALSE(convs.empty());
    for (const auto *profile : convs)
        EXPECT_EQ(profile->op, OpType::Conv2D);

    EXPECT_GT(dataset.meanTimeUs(hw::GpuModel::K80, OpType::Conv2D),
              500.0);
    EXPECT_FALSE(dataset.opTypes(hw::GpuModel::T4).empty());
}

TEST(DatasetTest, IterationProfilesCoverMultiGpu)
{
    const ProfileDataset &dataset = smallDataset();
    // 2 models x 4 GPUs x k in {1, 2}.
    EXPECT_EQ(dataset.iterations().size(), 2u * 4 * 2);
    for (const auto &run : dataset.iterations()) {
        EXPECT_GE(run.numGpus, 1);
        EXPECT_LE(run.numGpus, 2);
        EXPECT_GT(run.meanIterationUs, 0.0);
    }
}

TEST(DatasetTest, MultiGpuIterationsAreSlower)
{
    const ProfileDataset &dataset = smallDataset();
    std::map<std::pair<std::string, int>, double> by_key;
    for (const auto &run : dataset.iterations()) {
        if (run.gpu == hw::GpuModel::V100)
            by_key[{run.model, run.numGpus}] = run.meanIterationUs;
    }
    EXPECT_GT((by_key[{"inception_v1", 2}]),
              (by_key[{"inception_v1", 1}]));
    EXPECT_GT((by_key[{"vgg_11", 2}]), (by_key[{"vgg_11", 1}]));
}

TEST(DatasetTest, CsvRoundTripPreservesContent)
{
    const ProfileDataset &dataset = smallDataset();
    std::stringstream buffer;
    dataset.saveCsv(buffer);
    const ProfileDataset loaded = ProfileDataset::loadCsv(buffer);

    ASSERT_EQ(loaded.ops().size(), dataset.ops().size());
    for (std::size_t i = 0; i < loaded.ops().size(); ++i) {
        const OpProfile &original = dataset.ops()[i];
        const OpProfile &restored = loaded.ops()[i];
        EXPECT_EQ(restored.model, original.model);
        EXPECT_EQ(restored.gpu, original.gpu);
        EXPECT_EQ(restored.op, original.op);
        EXPECT_EQ(restored.onCpu, original.onCpu);
        EXPECT_EQ(restored.occurrences, original.occurrences);
        EXPECT_EQ(restored.features, original.features);
        EXPECT_EQ(restored.timeUs.count(), original.timeUs.count());
        EXPECT_NEAR(restored.timeUs.mean(), original.timeUs.mean(),
                    1e-6 * original.timeUs.mean() + 1e-9);
        EXPECT_NEAR(restored.timeUs.stddev(), original.timeUs.stddev(),
                    0.02 * original.timeUs.stddev() + 1e-9);
    }
}

TEST(DatasetTest, CsvRoundTripPreservesIterationRows)
{
    const ProfileDataset &dataset = smallDataset();
    std::stringstream buffer;
    dataset.saveCsv(buffer);
    const ProfileDataset loaded = ProfileDataset::loadCsv(buffer);

    ASSERT_EQ(loaded.iterations().size(), dataset.iterations().size());
    for (std::size_t i = 0; i < loaded.iterations().size(); ++i) {
        const IterationProfile &original = dataset.iterations()[i];
        const IterationProfile &restored = loaded.iterations()[i];
        EXPECT_EQ(restored.model, original.model);
        EXPECT_EQ(restored.gpu, original.gpu);
        EXPECT_EQ(restored.numGpus, original.numGpus);
        EXPECT_EQ(restored.paramCount, original.paramCount);
        EXPECT_NEAR(restored.meanIterationUs, original.meanIterationUs,
                    1e-6 * original.meanIterationUs);
        EXPECT_NEAR(restored.meanCommUs, original.meanCommUs,
                    1e-6 * original.meanCommUs + 1e-9);
    }
}

TEST(SeedingTest, RunSeedsAreOrderIndependentAndCollisionFree)
{
    // The run seed is a pure function of (base, model, gpu, k): no
    // dependence on sweep order, and no collisions across the sweep
    // grid or across nearby base seeds (the historical
    // `base + 1000 * run_index` scheme had both defects).
    std::set<std::uint64_t> seeds;
    std::size_t combos = 0;
    for (std::uint64_t base : {0ull, 1ull, 42ull, 43ull, 1000042ull}) {
        for (const char *model : {"alexnet", "vgg_11", "inception_v1"}) {
            for (hw::GpuModel gpu : hw::allGpuModels()) {
                for (int k = 1; k <= 8; ++k) {
                    seeds.insert(runSeed(base, model, gpu, k));
                    ++combos;
                }
            }
        }
    }
    EXPECT_EQ(seeds.size(), combos);
    EXPECT_EQ(runSeed(42, "alexnet", hw::GpuModel::V100, 2),
              runSeed(42, "alexnet", hw::GpuModel::V100, 2));
}

TEST(SeedingTest, ParallelCollectionMatchesSerialByteForByte)
{
    CollectOptions options;
    options.iterations = 12;
    options.maxGpus = 2;

    options.threads = 1;
    const ProfileDataset serial =
        collectProfiles({"alexnet", "vgg_11"}, options);
    std::stringstream serial_csv;
    serial.saveCsv(serial_csv);

    options.threads = 4;
    const ProfileDataset parallel =
        collectProfiles({"alexnet", "vgg_11"}, options);
    std::stringstream parallel_csv;
    parallel.saveCsv(parallel_csv);

    EXPECT_EQ(serial_csv.str(), parallel_csv.str());
}

TEST(SeedingTest, CollectionIsByteIdenticalWithObservabilityOn)
{
    // The profiler's timers/counters/spans must not perturb results:
    // obs-on output matches obs-off output byte for byte at every
    // thread count.
    CollectOptions options;
    options.iterations = 12;
    options.maxGpus = 2;
    const std::vector<std::string> models = {"alexnet", "vgg_11"};
    for (int threads : {1, 2, 4, 8}) {
        SCOPED_TRACE(threads);
        options.threads = threads;
        std::stringstream off_csv, on_csv;
        {
            obs::ScopedEnable off(false);
            collectProfiles(models, options).saveCsv(off_csv);
        }
        {
            obs::ScopedEnable on(true);
            collectProfiles(models, options).saveCsv(on_csv);
        }
        EXPECT_EQ(on_csv.str(), off_csv.str());
    }
}

TEST(DatasetTest, LoadedDatasetServesIndexedQueries)
{
    // The (gpu, op) index must be rebuilt on load, not only on fresh
    // collection.
    const ProfileDataset &dataset = smallDataset();
    std::stringstream buffer;
    dataset.saveCsv(buffer);
    const ProfileDataset loaded = ProfileDataset::loadCsv(buffer);

    for (hw::GpuModel gpu : hw::allGpuModels()) {
        EXPECT_EQ(loaded.opsFor(gpu).size(), dataset.opsFor(gpu).size());
        const auto types = dataset.opTypes(gpu);
        EXPECT_EQ(loaded.opTypes(gpu), types);
        for (OpType op : types) {
            EXPECT_EQ(loaded.opsFor(gpu, op).size(),
                      dataset.opsFor(gpu, op).size());
            EXPECT_NEAR(loaded.meanTimeUs(gpu, op),
                        dataset.meanTimeUs(gpu, op),
                        1e-6 * dataset.meanTimeUs(gpu, op) + 1e-9);
        }
    }
}

TEST(DatasetTest, LightOpsContributeLittle)
{
    // Paper Sec. III-A: light ops contribute < 7% of training time.
    // Classification is per op *type* by mean time on P2, as in the
    // paper; contributions are then measured on every GPU.
    const ProfileDataset &dataset = smallDataset();
    std::set<OpType> heavy;
    for (OpType op : dataset.opTypes(hw::GpuModel::K80)) {
        if (graph::opTypeInfo(op).device == graph::Device::Gpu &&
            dataset.meanTimeUs(hw::GpuModel::K80, op) >= 500.0) {
            heavy.insert(op);
        }
    }
    for (hw::GpuModel gpu : hw::allGpuModels()) {
        double light = 0.0, total = 0.0;
        for (const auto *profile : dataset.opsFor(gpu)) {
            const double contribution =
                profile->timeUs.mean() *
                static_cast<double>(profile->occurrences);
            total += contribution;
            if (!profile->onCpu && !heavy.count(profile->op))
                light += contribution;
        }
        EXPECT_LT(light / total, 0.07) << hw::gpuModelName(gpu);
    }
}

} // namespace
} // namespace profile
} // namespace ceer
