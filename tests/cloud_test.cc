/**
 * @file
 * Tests for the instance catalog: the paper's 8 real instances and
 * prices, the proxy rule, budget filters, and the market repricing.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "cloud/instances.h"

namespace ceer {
namespace cloud {
namespace {

using hw::GpuModel;

TEST(CatalogTest, PaperRealInstancesAndPrices)
{
    const InstanceCatalog catalog = InstanceCatalog::awsOnDemand();
    EXPECT_DOUBLE_EQ(catalog.find("p3.2xlarge").hourlyUsd, 3.06);
    EXPECT_DOUBLE_EQ(catalog.find("p2.xlarge").hourlyUsd, 0.90);
    EXPECT_DOUBLE_EQ(catalog.find("g4dn.2xlarge").hourlyUsd, 0.752);
    EXPECT_DOUBLE_EQ(catalog.find("g3s.xlarge").hourlyUsd, 0.75);
    EXPECT_DOUBLE_EQ(catalog.find("p3.8xlarge").hourlyUsd, 12.24);
    EXPECT_DOUBLE_EQ(catalog.find("p2.8xlarge-4gpu-proxy").hourlyUsd,
                     3.60);
    EXPECT_DOUBLE_EQ(catalog.find("g4dn.12xlarge").hourlyUsd, 3.912);
    EXPECT_DOUBLE_EQ(catalog.find("g3.16xlarge").hourlyUsd, 4.56);

    EXPECT_FALSE(catalog.find("p3.2xlarge").isProxy);
    EXPECT_EQ(catalog.find("p3.8xlarge").numGpus, 4);
}

TEST(CatalogTest, ProxyPricingFollowsPaperRule)
{
    const InstanceCatalog catalog = InstanceCatalog::awsOnDemand();
    // 3-GPU P2 proxy: 3/8 of p2.8xlarge ($7.20) = $2.70 (Sec. V).
    const GpuInstance &p2_3gpu = catalog.find(GpuModel::K80, 3);
    EXPECT_TRUE(p2_3gpu.isProxy);
    EXPECT_DOUBLE_EQ(p2_3gpu.hourlyUsd, 2.70);
    // 3-GPU G3 proxy: 3/4 of g3.16xlarge ($4.56) = $3.42.
    EXPECT_DOUBLE_EQ(catalog.find(GpuModel::M60, 3).hourlyUsd, 3.42);
    // 3-GPU G4 proxy: 3/4 of g4dn.12xlarge ($3.912) = $2.934.
    EXPECT_NEAR(catalog.find(GpuModel::T4, 3).hourlyUsd, 2.934, 1e-9);
    // 2-GPU P3 proxy: 2/4 of p3.8xlarge = $6.12.
    EXPECT_DOUBLE_EQ(catalog.find(GpuModel::V100, 2).hourlyUsd, 6.12);
}

TEST(CatalogTest, SixteenInstancesCoverFourFamilies)
{
    const InstanceCatalog catalog = InstanceCatalog::awsOnDemand();
    EXPECT_EQ(catalog.instances().size(), 16u);
    for (GpuModel gpu : hw::allGpuModels()) {
        const auto family = catalog.forGpu(gpu);
        ASSERT_EQ(family.size(), 4u);
        for (int k = 1; k <= 4; ++k)
            EXPECT_EQ(family[static_cast<std::size_t>(k) - 1].numGpus,
                      k);
    }
}

TEST(CatalogTest, HourlyBudgetFilter)
{
    const InstanceCatalog catalog = InstanceCatalog::awsOnDemand();
    const auto affordable = catalog.withinHourlyBudget(1.0);
    for (const auto &instance : affordable)
        EXPECT_LE(instance.hourlyUsd, 1.0);
    // p2.xlarge ($0.90), g4dn.2xlarge, g3s.xlarge qualify.
    EXPECT_EQ(affordable.size(), 3u);
}

TEST(CatalogTest, HourlyBudgetScenarioSelection)
{
    // Paper Sec. V ($3/hr, tolerance $0.42): P2 -> 3 GPUs, G3 -> 3,
    // G4 -> 3, P3 -> 1.
    const InstanceCatalog catalog = InstanceCatalog::awsOnDemand();
    const auto picks = catalog.largestPerFamilyWithin(3.0, 0.42);
    ASSERT_EQ(picks.size(), 4u);
    std::map<GpuModel, int> gpus;
    for (const auto &instance : picks)
        gpus[instance.gpu] = instance.numGpus;
    EXPECT_EQ(gpus[GpuModel::V100], 1);
    EXPECT_EQ(gpus[GpuModel::K80], 3);
    EXPECT_EQ(gpus[GpuModel::T4], 3);
    EXPECT_EQ(gpus[GpuModel::M60], 3);
}

TEST(CatalogTest, MarketPricingRatios)
{
    // Sec. V: per-GPU $3.06 / $0.95 / $0.55 / $0.15, linear in GPUs.
    const InstanceCatalog catalog = InstanceCatalog::marketPriced();
    EXPECT_DOUBLE_EQ(catalog.find(GpuModel::V100, 1).hourlyUsd, 3.06);
    EXPECT_DOUBLE_EQ(catalog.find(GpuModel::T4, 1).hourlyUsd, 0.95);
    EXPECT_DOUBLE_EQ(catalog.find(GpuModel::M60, 1).hourlyUsd, 0.55);
    EXPECT_DOUBLE_EQ(catalog.find(GpuModel::K80, 1).hourlyUsd, 0.15);
    EXPECT_DOUBLE_EQ(catalog.find(GpuModel::K80, 4).hourlyUsd, 0.60);
    // Under market prices P2 is by far the cheapest per GPU.
    EXPECT_LT(catalog.find(GpuModel::K80, 4).hourlyUsd,
              catalog.find(GpuModel::M60, 2).hourlyUsd);
}

TEST(CatalogTest, PerSecondPricing)
{
    const InstanceCatalog catalog = InstanceCatalog::awsOnDemand();
    EXPECT_NEAR(catalog.find("p3.2xlarge").perSecondUsd(), 3.06 / 3600,
                1e-12);
}

TEST(CatalogTest, CsvRoundTrip)
{
    const InstanceCatalog original = InstanceCatalog::awsOnDemand();
    std::stringstream buffer;
    original.saveCsv(buffer);
    const InstanceCatalog loaded = InstanceCatalog::fromCsv(buffer);
    ASSERT_EQ(loaded.instances().size(), original.instances().size());
    for (std::size_t i = 0; i < loaded.instances().size(); ++i) {
        EXPECT_EQ(loaded.instances()[i].name,
                  original.instances()[i].name);
        EXPECT_EQ(loaded.instances()[i].gpu,
                  original.instances()[i].gpu);
        EXPECT_EQ(loaded.instances()[i].numGpus,
                  original.instances()[i].numGpus);
        EXPECT_NEAR(loaded.instances()[i].hourlyUsd,
                    original.instances()[i].hourlyUsd, 1e-6);
    }
}

TEST(CatalogTest, CsvAcceptsCustomOfferings)
{
    std::istringstream in(
        "name,gpu,gpus,hourly_usd\n"
        "spot-v100,V100,1,0.92\n"
        "other-cloud-t4,g4,2,0.41\n");
    const InstanceCatalog catalog = InstanceCatalog::fromCsv(in);
    ASSERT_EQ(catalog.instances().size(), 2u);
    EXPECT_EQ(catalog.find("spot-v100").gpu, GpuModel::V100);
    EXPECT_EQ(catalog.find("other-cloud-t4").numGpus, 2);
    EXPECT_DOUBLE_EQ(catalog.find("other-cloud-t4").hourlyUsd, 0.41);
}

TEST(CatalogTest, CsvRejectsMalformedRows)
{
    std::istringstream missing("name,gpu,gpus,hourly_usd\nfoo,V100\n");
    EXPECT_DEATH(InstanceCatalog::fromCsv(missing), "fields");
    std::istringstream bad_gpu(
        "name,gpu,gpus,hourly_usd\nfoo,H100,1,2.0\n");
    EXPECT_DEATH(InstanceCatalog::fromCsv(bad_gpu), "unknown GPU");
    std::istringstream bad_price(
        "name,gpu,gpus,hourly_usd\nfoo,V100,1,-2.0\n");
    EXPECT_DEATH(InstanceCatalog::fromCsv(bad_price), "bad row");
}

TEST(CatalogTest, MissingInstanceIsFatal)
{
    const InstanceCatalog catalog = InstanceCatalog::awsOnDemand();
    EXPECT_DEATH(catalog.find("p4d.24xlarge"), "no instance");
    EXPECT_DEATH(catalog.find(GpuModel::V100, 7), "no 7-GPU");
}

} // namespace
} // namespace cloud
} // namespace ceer
