/**
 * @file
 * Tests for the iteration-timeline (Chrome tracing) exporter.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "models/model_zoo.h"
#include "obs/trace_sink.h"
#include "sim/trace.h"

namespace ceer {
namespace sim {
namespace {

IterationTrace
sampleTrace()
{
    const graph::Graph g = models::buildInceptionV1(8);
    SimConfig config;
    config.seed = 31337;
    return traceIteration(g, config);
}

TEST(TraceTest, OneEventPerNodePlusSync)
{
    const graph::Graph g = models::buildInceptionV1(8);
    SimConfig config;
    const IterationTrace trace = traceIteration(g, config);
    EXPECT_EQ(trace.events().size(), g.size() + 1);
    EXPECT_EQ(trace.events().back().category, "Communication");
    EXPECT_EQ(trace.events().back().lane, 2);
}

TEST(TraceTest, LanesArePackedWithoutOverlap)
{
    const IterationTrace trace = sampleTrace();
    double cursor[2] = {0.0, 0.0};
    for (const auto &event : trace.events()) {
        if (event.lane > 1)
            continue;
        // Sequential layout: each event starts where the previous one
        // on its lane ended.
        EXPECT_NEAR(event.startUs, cursor[event.lane], 1e-9)
            << event.name;
        cursor[event.lane] = event.startUs + event.durationUs;
        EXPECT_GT(event.durationUs, 0.0) << event.name;
    }
}

TEST(TraceTest, TotalsAreConsistent)
{
    const graph::Graph g = models::buildAlexNet(8);
    SimConfig config;
    config.seed = 7;
    const IterationTrace trace = traceIteration(g, config);
    // GPU + CPU lane totals plus comm should bound the iteration total
    // (total = max(gpu, cpu) + comm in the additive model).
    const double gpu = trace.laneTotalUs(0);
    const double cpu = trace.laneTotalUs(1);
    const double comm = trace.laneTotalUs(2);
    EXPECT_NEAR(trace.totalUs(), gpu + cpu + comm, 1e-6);
    EXPECT_GT(gpu, cpu); // GPU work dominates a CNN iteration.
}

TEST(TraceTest, ChromeJsonIsWellFormed)
{
    const IterationTrace trace = sampleTrace();
    std::ostringstream out;
    trace.writeChromeTrace(out);
    const std::string text = out.str();
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.front(), '[');
    EXPECT_EQ(text[text.size() - 2], ']');
    // Balanced braces and the metadata records present.
    EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
              std::count(text.begin(), text.end(), '}'));
    EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(text.find("GPU stream"), std::string::npos);
    EXPECT_NE(text.find("synchronization"), std::string::npos);
    // No trailing comma before the closing bracket.
    EXPECT_EQ(text.find(",\n]"), std::string::npos);
}

TEST(TraceTest, ChromeJsonEscapesControlCharacters)
{
    // Raw \r, \b, \f or other control bytes inside an event name once
    // reached the output verbatim and produced invalid JSON. Every
    // byte below 0x20 must come out as an escape sequence.
    const std::string hostile("tab\there\r\n back\b feed\f bell\x07"
                              " nul\x00 quote\" slash\\ unit\x1f",
                              53);
    const std::string escaped = obs::chromeJsonEscape(hostile);
    for (char c : escaped)
        EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
            << "raw control byte leaked into JSON";
    EXPECT_NE(escaped.find("\\t"), std::string::npos);
    EXPECT_NE(escaped.find("\\r"), std::string::npos);
    EXPECT_NE(escaped.find("\\n"), std::string::npos);
    EXPECT_NE(escaped.find("\\b"), std::string::npos);
    EXPECT_NE(escaped.find("\\f"), std::string::npos);
    EXPECT_NE(escaped.find("\\u0007"), std::string::npos);
    EXPECT_NE(escaped.find("\\u0000"), std::string::npos);
    EXPECT_NE(escaped.find("\\u001f"), std::string::npos);
    EXPECT_NE(escaped.find("\\\""), std::string::npos);
    EXPECT_NE(escaped.find("\\\\"), std::string::npos);

    // Round trip through a full event line: the document stays
    // structurally sound (quotes balance, no raw control bytes).
    std::ostringstream out;
    obs::chromeCompleteEvent(out, hostile, "cat", 0.0, 1.0, 0, true);
    const std::string line = out.str();
    for (char c : line) {
        if (c != '\n') {
            EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
        }
    }
}

TEST(TraceTest, ChromeTraceUsesSharedWriter)
{
    // Pins sim::IterationTrace::writeChromeTrace to the shared obs
    // chrome-trace helpers: a document built event by event from
    // obs::chromeThreadNameEvent / obs::chromeCompleteEvent must be
    // byte-identical (the historical inline-formatted output).
    const IterationTrace trace = sampleTrace();
    std::ostringstream actual;
    trace.writeChromeTrace(actual);

    std::ostringstream expected;
    expected << "[\n";
    const char *lane_names[] = {"GPU stream", "host (CPU ops)",
                                "synchronization"};
    for (int lane = 0; lane <= 2; ++lane)
        obs::chromeThreadNameEvent(expected, lane, lane_names[lane]);
    const auto &events = trace.events();
    for (std::size_t i = 0; i < events.size(); ++i)
        obs::chromeCompleteEvent(expected, events[i].name,
                                 events[i].category, events[i].startUs,
                                 events[i].durationUs, events[i].lane,
                                 i + 1 == events.size());
    expected << "]\n";
    EXPECT_EQ(actual.str(), expected.str());
}

TEST(TraceTest, CategoriesAreOpTypeNames)
{
    const IterationTrace trace = sampleTrace();
    bool saw_conv = false, saw_cpu_op = false;
    for (const auto &event : trace.events()) {
        saw_conv |= event.category == "Conv2D" && event.lane == 0;
        saw_cpu_op |=
            event.category == "IteratorGetNext" && event.lane == 1;
    }
    EXPECT_TRUE(saw_conv);
    EXPECT_TRUE(saw_cpu_op);
}

} // namespace
} // namespace sim
} // namespace ceer
