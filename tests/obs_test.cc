/**
 * @file
 * Tests for the observability layer: registry semantics, shard-merge
 * correctness under contention, snapshot-while-recording safety (the
 * TSan pass in tools/check.sh runs this binary), disabled-mode no-ops,
 * the JSON snapshot writer/parser round trip, and the trace sink's
 * Chrome-format export.
 *
 * The registry is process-global, so every test uses names under a
 * test-unique prefix and resets values it asserts on.
 */

#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace_sink.h"

namespace ceer {
namespace obs {
namespace {

TEST(ObsRegistryTest, SameNameReturnsSameInstance)
{
    Counter &a = counter("obs_test.registry.counter");
    Counter &b = counter("obs_test.registry.counter");
    EXPECT_EQ(&a, &b);

    Gauge &g1 = gauge("obs_test.registry.gauge");
    Gauge &g2 = gauge("obs_test.registry.gauge");
    EXPECT_EQ(&g1, &g2);

    Histogram &h1 = histogram("obs_test.registry.hist");
    Histogram &h2 = histogram("obs_test.registry.hist");
    EXPECT_EQ(&h1, &h2);
}

TEST(ObsRegistryTest, CounterAddsAndResetsInPlace)
{
    Counter &c = counter("obs_test.registry.add");
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);

    // reset() zeroes in place: the same reference keeps working.
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    c.add(7);
    EXPECT_EQ(c.value(), 7u);
}

TEST(ObsRegistryTest, GaugeKeepsLastWrite)
{
    Gauge &g = gauge("obs_test.registry.gauge_rw");
    g.set(1.5);
    g.set(-3.25);
    EXPECT_EQ(g.value(), -3.25);
    g.reset();
    EXPECT_EQ(g.value(), 0.0);
}

TEST(ObsRegistryTest, ResetMetricsKeepsReferencesValid)
{
    Counter &c = counter("obs_test.registry.global_reset");
    c.add(5);
    resetMetrics();
    EXPECT_EQ(c.value(), 0u);
    c.add(3);
    EXPECT_EQ(c.value(), 3u);
}

TEST(ObsHistogramTest, ValuesLandInFirstBucketWithBoundAtLeastValue)
{
    Histogram &h =
        histogram("obs_test.hist.boundaries", {1.0, 2.0, 5.0});
    h.reset();
    h.record(0.5); // bucket 0
    h.record(1.0); // bucket 0 (bound >= value)
    h.record(1.5); // bucket 1
    h.record(2.0); // bucket 1
    h.record(5.0); // bucket 2
    h.record(7.0); // overflow bucket 3
    const std::vector<std::uint64_t> expected = {2, 2, 1, 1};
    EXPECT_EQ(h.bucketCounts(), expected);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 7.0);
}

TEST(ObsHistogramTest, NanIsIgnored)
{
    Histogram &h = histogram("obs_test.hist.nan", {1.0, 10.0});
    h.reset();
    h.record(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(h.count(), 0u);
    h.record(3.0);
    EXPECT_EQ(h.count(), 1u);
}

TEST(ObsHistogramTest, FirstCreationWinsOnBounds)
{
    Histogram &first =
        histogram("obs_test.hist.first_wins", {1.0, 2.0});
    Histogram &second =
        histogram("obs_test.hist.first_wins", {10.0, 20.0, 30.0});
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(second.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(ObsHistogramTest, DefaultBoundsAreStrictlyIncreasing)
{
    const std::vector<double> &bounds = defaultLatencyBoundsUs();
    ASSERT_FALSE(bounds.empty());
    for (std::size_t i = 1; i < bounds.size(); ++i)
        EXPECT_LT(bounds[i - 1], bounds[i]);
    Histogram &h = histogram("obs_test.hist.default_bounds");
    EXPECT_EQ(h.bounds(), bounds);
}

// The shard-merge contract: concurrent adds from more threads than
// shards lose nothing. tools/check.sh runs this under TSan.
TEST(ObsConcurrencyTest, HammeredCounterAndHistogramMergeExactly)
{
    constexpr int kThreads = 16;
    constexpr int kPerThread = 20'000;
    Counter &c = counter("obs_test.hammer.counter");
    Histogram &h = histogram("obs_test.hammer.hist", {10.0, 100.0});
    c.reset();
    h.reset();

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&c, &h, t] {
            for (int i = 0; i < kPerThread; ++i) {
                c.add(1);
                h.record(static_cast<double>(t % 3) * 50.0);
            }
        });
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(c.value(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(h.count(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    std::uint64_t bucket_total = 0;
    for (std::uint64_t bucket : h.bucketCounts())
        bucket_total += bucket;
    EXPECT_EQ(bucket_total, h.count());
}

// Snapshots taken while writers are mid-record must be safe (no torn
// reads, no crashes) and never observe more than was written.
TEST(ObsConcurrencyTest, SnapshotWhileRecordingIsSafe)
{
    constexpr int kWriters = 4;
    constexpr int kPerThread = 50'000;
    Counter &c = counter("obs_test.snapshot.live");
    c.reset();

    std::atomic<bool> done{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < kWriters; ++t)
        writers.emplace_back([&c] {
            for (int i = 0; i < kPerThread; ++i)
                c.add(1);
        });

    std::thread reader([&done, &c] {
        std::uint64_t previous = 0;
        while (!done.load(std::memory_order_acquire)) {
            MetricsSnapshot snapshot = snapshotMetrics();
            const std::uint64_t seen =
                snapshot.counterValue("obs_test.snapshot.live");
            EXPECT_GE(seen, previous);
            EXPECT_LE(seen, static_cast<std::uint64_t>(kWriters) *
                                kPerThread);
            previous = seen;
            (void)c.value();
        }
    });

    for (std::thread &writer : writers)
        writer.join();
    done.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(c.value(),
              static_cast<std::uint64_t>(kWriters) * kPerThread);
}

TEST(ObsEnabledTest, MacrosAreNoOpsWhileDisabled)
{
    ScopedEnable off(false);
    OBS_COUNTER_INC("obs_test.disabled.counter");
    OBS_COUNTER_ADD("obs_test.disabled.counter", 10);
    OBS_GAUGE_SET("obs_test.disabled.gauge", 4.0);
    OBS_HISTOGRAM_RECORD("obs_test.disabled.hist", 2.0);
    {
        OBS_TIMER("obs_test.disabled.timer_us");
    }

    // The macros never even touched the registry: the names were not
    // created, not just left at zero.
    MetricsSnapshot snapshot = snapshotMetrics();
    for (const auto &[name, value] : snapshot.counters)
        EXPECT_NE(name, "obs_test.disabled.counter") << value;
    for (const auto &[name, value] : snapshot.gauges)
        EXPECT_NE(name, "obs_test.disabled.gauge") << value;
    EXPECT_EQ(snapshot.findHistogram("obs_test.disabled.hist"),
              nullptr);
    EXPECT_EQ(snapshot.findHistogram("obs_test.disabled.timer_us"),
              nullptr);
}

TEST(ObsEnabledTest, MacrosRecordWhileEnabled)
{
    ScopedEnable on(true);
    counter("obs_test.enabled.counter").reset();
    OBS_COUNTER_ADD("obs_test.enabled.counter", 3);
    OBS_GAUGE_SET("obs_test.enabled.gauge", 2.5);
    OBS_HISTOGRAM_RECORD("obs_test.enabled.hist", 4.0);
    {
        OBS_TIMER("obs_test.enabled.timer_us");
    }

    MetricsSnapshot snapshot = snapshotMetrics();
    EXPECT_EQ(snapshot.counterValue("obs_test.enabled.counter"), 3u);
    EXPECT_EQ(snapshot.gaugeValue("obs_test.enabled.gauge"), 2.5);
    const HistogramSnapshot *hist =
        snapshot.findHistogram("obs_test.enabled.hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count, 1u);
    const HistogramSnapshot *timer =
        snapshot.findHistogram("obs_test.enabled.timer_us");
    ASSERT_NE(timer, nullptr);
    EXPECT_EQ(timer->count, 1u);
    EXPECT_GE(timer->sum, 0.0);
}

TEST(ObsEnabledTest, ScopedEnableRestoresPreviousState)
{
    const bool before = enabled();
    {
        ScopedEnable on(true);
        EXPECT_TRUE(enabled());
        {
            ScopedEnable off(false);
            EXPECT_FALSE(enabled());
        }
        EXPECT_TRUE(enabled());
    }
    EXPECT_EQ(enabled(), before);
}

TEST(ObsTimerTest, ScopedTimerRecordsElapsedMicroseconds)
{
    Histogram &h = histogram("obs_test.timer.direct_us");
    h.reset();
    {
        ScopedTimer timer(h);
    }
    EXPECT_EQ(h.count(), 1u);
    EXPECT_GE(h.sum(), 0.0);
}

TEST(ObsSnapshotTest, LookupHelpersHandleAbsentNames)
{
    MetricsSnapshot snapshot;
    EXPECT_EQ(snapshot.counterValue("no.such.counter"), 0u);
    EXPECT_EQ(snapshot.gaugeValue("no.such.gauge"), 0.0);
    EXPECT_EQ(snapshot.findHistogram("no.such.hist"), nullptr);
}

// ---------------------------------------------------------------------
// JSON snapshot writer / checked parser.

TEST(ObsJsonTest, RoundTripIsExact)
{
    MetricsSnapshot snapshot;
    snapshot.counters = {{"a.count", 0},
                         {"b.count", 18446744073709551615ull}};
    snapshot.gauges = {{"a.rate", -0.1},
                       {"b.rate", 12345.678901234567}};
    HistogramSnapshot hist;
    hist.name = "c.latency_us";
    hist.bounds = {1.0, 2.5, 1e7};
    hist.buckets = {4, 0, 1, 2};
    hist.count = 7;
    hist.sum = 1.0 / 3.0;
    snapshot.histograms = {hist};

    std::ostringstream out;
    writeMetricsJson(out, snapshot);

    MetricsSnapshot parsed;
    std::string error;
    ASSERT_TRUE(tryParseMetricsJson(out.str(), &parsed, &error))
        << error;
    EXPECT_EQ(parsed, snapshot);
}

TEST(ObsJsonTest, EscapedNamesRoundTrip)
{
    MetricsSnapshot snapshot;
    snapshot.counters = {{"weird \"name\"\\with\nescapes\t!", 3}};

    std::ostringstream out;
    writeMetricsJson(out, snapshot);

    MetricsSnapshot parsed;
    std::string error;
    ASSERT_TRUE(tryParseMetricsJson(out.str(), &parsed, &error))
        << error;
    EXPECT_EQ(parsed, snapshot);
}

TEST(ObsJsonTest, NonFiniteValuesAreWrittenAsZero)
{
    MetricsSnapshot snapshot;
    snapshot.gauges = {
        {"inf", std::numeric_limits<double>::infinity()},
        {"nan", std::numeric_limits<double>::quiet_NaN()}};

    std::ostringstream out;
    writeMetricsJson(out, snapshot);

    MetricsSnapshot parsed;
    std::string error;
    ASSERT_TRUE(tryParseMetricsJson(out.str(), &parsed, &error))
        << error;
    EXPECT_EQ(parsed.gaugeValue("inf"), 0.0);
    EXPECT_EQ(parsed.gaugeValue("nan"), 0.0);
}

TEST(ObsJsonTest, RegistrySnapshotRoundTripsThroughWriter)
{
    ScopedEnable on(true);
    counter("obs_test.json.live_counter").reset();
    counter("obs_test.json.live_counter").add(11);
    gauge("obs_test.json.live_gauge").set(0.125);
    Histogram &h = histogram("obs_test.json.live_hist", {1.0, 10.0});
    h.reset();
    h.record(0.5);
    h.record(100.0);

    MetricsSnapshot snapshot = snapshotMetrics();
    std::ostringstream out;
    writeMetricsJson(out); // convenience overload snapshots itself

    MetricsSnapshot parsed;
    std::string error;
    ASSERT_TRUE(tryParseMetricsJson(out.str(), &parsed, &error))
        << error;
    EXPECT_EQ(parsed.counterValue("obs_test.json.live_counter"), 11u);
    EXPECT_EQ(parsed.gaugeValue("obs_test.json.live_gauge"), 0.125);
    const HistogramSnapshot *hist =
        parsed.findHistogram("obs_test.json.live_hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count, 2u);
    // The live registry may have moved between the two snapshots
    // (other tests run in the same process), but everything this test
    // owns must round-trip exactly.
    EXPECT_EQ(*hist, *snapshot.findHistogram("obs_test.json.live_hist"));
}

TEST(ObsJsonTest, ParserRejectsMalformedDocuments)
{
    const std::vector<std::string> bad = {
        "",
        "{",
        "[]",
        "{\"counters\": {}}",
        "{\"gauges\": {}, \"counters\": {}, \"histograms\": {}}",
        "{\"counters\": {\"a\": -1}, \"gauges\": {}, "
        "\"histograms\": {}}",
        "{\"counters\": {\"a\": 1}, \"gauges\": {}, "
        "\"histograms\": {}} trailing",
        // Bucket array must have bounds.size() + 1 entries.
        "{\"counters\": {}, \"gauges\": {}, \"histograms\": "
        "{\"h\": {\"bounds\": [1, 2], \"buckets\": [0, 0], "
        "\"count\": 0, \"sum\": 0}}}",
        // Unterminated string.
        "{\"counters\": {\"a: 1}, \"gauges\": {}, "
        "\"histograms\": {}}",
    };
    for (const std::string &text : bad) {
        MetricsSnapshot out;
        out.counters = {{"sentinel", 99}};
        std::string error;
        EXPECT_FALSE(tryParseMetricsJson(text, &out, &error))
            << "accepted: " << text;
        EXPECT_FALSE(error.empty()) << text;
        // *out untouched on failure.
        ASSERT_EQ(out.counters.size(), 1u) << text;
        EXPECT_EQ(out.counters[0].first, "sentinel") << text;
    }
}

TEST(ObsJsonTest, WriteMetricsFileReportsUnwritablePath)
{
    std::string error;
    EXPECT_FALSE(tryWriteMetricsFile(
        "/no/such/directory/metrics.json", &error));
    EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------
// Trace sink.

TEST(ObsTraceTest, RecordsAndClearsSpans)
{
    TraceSink sink;
    EXPECT_EQ(sink.size(), 0u);

    TraceSpan span;
    span.name = "work";
    span.category = "test";
    span.startUs = 1.0;
    span.durationUs = 2.0;
    span.lane = 0;
    sink.record(span);
    ASSERT_EQ(sink.size(), 1u);
    EXPECT_EQ(sink.spans()[0], span);

    sink.clear();
    EXPECT_EQ(sink.size(), 0u);
}

TEST(ObsTraceTest, ChromeTraceFormatIsWellFormed)
{
    TraceSink sink;
    sink.record({"first \"quoted\"", "cat", 0.5, 10.0, 0});
    sink.record({"second", "cat", 11.0, 1.5, 1});

    std::ostringstream out;
    sink.writeChromeTrace(out);
    const std::string text = out.str();

    EXPECT_EQ(text.front(), '[');
    EXPECT_EQ(text.substr(text.size() - 2), "]\n");
    // One thread_name metadata line per lane, in lane order.
    EXPECT_NE(text.find("\"name\": \"thread_name\", \"ph\": \"M\", "
                        "\"pid\": 1, \"tid\": 0"),
              std::string::npos);
    EXPECT_NE(text.find("\"args\": {\"name\": \"worker 1\"}"),
              std::string::npos);
    EXPECT_NE(text.find("\"name\": \"first \\\"quoted\\\"\""),
              std::string::npos);
    // The final event line has no trailing comma.
    EXPECT_NE(text.find("\"tid\": 1}\n]"), std::string::npos);
}

TEST(ObsTraceTest, ScopedSpanArmsOnlyWhileEnabled)
{
    TraceSink &sink = TraceSink::instance();
    sink.clear();
    {
        ScopedEnable off(false);
        ScopedSpan span("ignored", "test");
    }
    EXPECT_EQ(sink.size(), 0u);
    {
        ScopedEnable on(true);
        ScopedSpan span("captured", "test");
    }
    ASSERT_EQ(sink.size(), 1u);
    const TraceSpan recorded = sink.spans()[0];
    EXPECT_EQ(recorded.name, "captured");
    EXPECT_EQ(recorded.category, "test");
    EXPECT_GE(recorded.durationUs, 0.0);
    sink.clear();
}

TEST(ObsTraceTest, SpanMacroTracesScope)
{
    TraceSink &sink = TraceSink::instance();
    sink.clear();
    {
        ScopedEnable on(true);
        OBS_SPAN("macro span", "test");
    }
    ASSERT_EQ(sink.size(), 1u);
    EXPECT_EQ(sink.spans()[0].name, "macro span");
    sink.clear();
}

TEST(ObsTraceTest, LanesAreStablePerThread)
{
    // Lanes are cached per OS thread, so distinctness is only
    // guaranteed against the process-wide sink every span goes to.
    TraceSink &sink = TraceSink::instance();
    const int lane_a = sink.laneForThisThread();
    EXPECT_EQ(sink.laneForThisThread(), lane_a);
    int lane_b = -1;
    std::thread other(
        [&sink, &lane_b] { lane_b = sink.laneForThisThread(); });
    other.join();
    EXPECT_NE(lane_a, lane_b);
}

TEST(ObsTraceTest, ConcurrentSpansAreAllRecorded)
{
    TraceSink &sink = TraceSink::instance();
    sink.clear();
    constexpr int kThreads = 8;
    constexpr int kSpansPerThread = 200;
    {
        ScopedEnable on(true);
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t)
            threads.emplace_back([] {
                for (int i = 0; i < kSpansPerThread; ++i) {
                    ScopedSpan span("burst", "test");
                }
            });
        for (std::thread &thread : threads)
            thread.join();
    }
    EXPECT_EQ(sink.size(),
              static_cast<std::size_t>(kThreads) * kSpansPerThread);
    sink.clear();
}

} // namespace
} // namespace obs
} // namespace ceer
