/**
 * @file
 * Compiled-prediction-plan tests: bit-identity of the plan evaluator
 * against the scalar node walk, predictBatch equivalence, byte-identity
 * of the parallel recommender sweep and the parallel trainer at every
 * thread count, and recommender constraint edge cases under serial AND
 * parallel sweeps.
 */

#include <cstdint>
#include <cstring>
#include <sstream>

#include <gtest/gtest.h>

#include "cloud/instances.h"
#include "core/predictor.h"
#include "core/recommender.h"
#include "core/trainer.h"
#include "models/model_zoo.h"
#include "obs/metrics.h"
#include "profile/profiler.h"

namespace ceer {
namespace core {
namespace {

using graph::Graph;
using hw::GpuModel;

/** Bit pattern of a double (== would conflate +0.0 and -0.0). */
std::uint64_t
bits(double x)
{
    std::uint64_t u;
    std::memcpy(&u, &x, sizeof u);
    return u;
}

/**
 * Cheap fixture: trained on two CNNs at few iterations. Enough
 * distinct instances to exercise linear, quadratic and median
 * fallback paths; fast enough to share across every test here.
 */
const CeerModel &
cheapModel()
{
    static const CeerModel model = [] {
        profile::CollectOptions options;
        options.iterations = 12;
        const profile::ProfileDataset dataset = profile::collectProfiles(
            {"vgg_11", "inception_v1"}, options);
        return trainCeer(dataset);
    }();
    return model;
}

const CeerPredictor &
cheapPredictor()
{
    static const CeerPredictor predictor(cheapModel());
    return predictor;
}

/** Every ablation combination of PredictOptions. */
std::vector<PredictOptions>
allOptions()
{
    std::vector<PredictOptions> combos;
    for (bool comm : {true, false}) {
        for (bool light : {true, false}) {
            PredictOptions options;
            options.includeComm = comm;
            options.includeLightAndCpu = light;
            combos.push_back(options);
        }
    }
    return combos;
}

TEST(PredictPlanTest, MatchesScalarWalkBitForBit)
{
    const CeerPredictor &predictor = cheapPredictor();
    // vgg_11 is in-training-set, vgg_19 and resnet_50 are held out —
    // the latter exercise the no-model/unusable fallbacks too.
    for (const char *name : {"vgg_11", "inception_v1", "vgg_19",
                             "resnet_50"}) {
        const Graph g = models::buildModel(name, 32);
        const PredictPlan plan = predictor.compile(g);
        for (GpuModel gpu : hw::allGpuModels()) {
            for (int k : {1, 2, 4, 8}) {
                for (const PredictOptions &options : allOptions()) {
                    const double scalar = predictor.predictIterationUs(
                        g, gpu, k, options);
                    const double compiled =
                        predictor.predictIterationUs(plan, gpu, k,
                                                     options);
                    EXPECT_EQ(bits(scalar), bits(compiled))
                        << name << " gpu=" << hw::gpuModelName(gpu)
                        << " k=" << k
                        << " comm=" << options.includeComm
                        << " light=" << options.includeLightAndCpu;
                }
            }
        }
    }
}

TEST(PredictPlanTest, PlanCountsMatchGraph)
{
    const CeerPredictor &predictor = cheapPredictor();
    const Graph g = models::buildModel("inception_v1", 32);
    const PredictPlan plan = predictor.compile(g);
    EXPECT_EQ(plan.nodeCount(), g.size());
    EXPECT_EQ(plan.heavyCount() + plan.lightCount() + plan.cpuCount(),
              g.size());
    EXPECT_GT(plan.groupCount(), 0u);
    EXPECT_EQ(plan.paramCount(), g.totalParameters());
}

TEST(PredictPlanTest, TrainingPredictionMatchesScalar)
{
    const CeerPredictor &predictor = cheapPredictor();
    const Graph g = models::buildModel("vgg_19", 32);
    const PredictPlan plan = predictor.compile(g);
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();
    for (const cloud::GpuInstance &instance : catalog.instances()) {
        const TrainingPrediction scalar = predictor.predictTraining(
            g, instance, 1'200'000, 32);
        const TrainingPrediction compiled = predictor.predictTraining(
            plan, instance, 1'200'000, 32);
        EXPECT_EQ(scalar.iterations, compiled.iterations);
        EXPECT_EQ(bits(scalar.iterationUs), bits(compiled.iterationUs));
        EXPECT_EQ(bits(scalar.hours), bits(compiled.hours));
    }
}

TEST(PredictPlanTest, PredictBatchMatchesIndividualCalls)
{
    const CeerPredictor &predictor = cheapPredictor();
    const Graph g = models::buildModel("inception_v1", 32);
    const PredictPlan plan = predictor.compile(g);
    std::vector<PredictRequest> requests;
    for (GpuModel gpu : hw::allGpuModels())
        for (int k : {1, 2, 4, 8})
            requests.push_back({gpu, k});
    const std::vector<double> batch =
        predictor.predictBatch(plan, requests);
    ASSERT_EQ(batch.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        EXPECT_EQ(bits(batch[i]),
                  bits(predictor.predictIterationUs(
                      g, requests[i].gpu, requests[i].numGpus)))
            << "request " << i;
    }
}

TEST(PredictPlanTest, MemoizedPlanIsReusableAcrossGpus)
{
    // Two evaluation rounds over one plan: the second round hits the
    // per-GPU memo and must return the same bits as the first.
    const CeerPredictor &predictor = cheapPredictor();
    const Graph g = models::buildModel("vgg_11", 32);
    const PredictPlan plan = predictor.compile(g);
    for (GpuModel gpu : hw::allGpuModels()) {
        const double first = predictor.predictIterationUs(plan, gpu, 1);
        const double second = predictor.predictIterationUs(plan, gpu, 1);
        EXPECT_EQ(bits(first), bits(second));
    }
}

/** Field-by-field bit comparison of two evaluations. */
void
expectEvaluationsIdentical(const CandidateEvaluation &a,
                           const CandidateEvaluation &b)
{
    EXPECT_EQ(a.instance.name, b.instance.name);
    EXPECT_EQ(a.prediction.iterations, b.prediction.iterations);
    EXPECT_EQ(bits(a.prediction.iterationUs),
              bits(b.prediction.iterationUs));
    EXPECT_EQ(bits(a.prediction.hours), bits(b.prediction.hours));
    EXPECT_EQ(bits(a.costUsd), bits(b.costUsd));
    EXPECT_EQ(a.withinHourly, b.withinHourly);
    EXPECT_EQ(a.withinTotal, b.withinTotal);
    EXPECT_EQ(a.fitsMemory, b.fitsMemory);
}

TEST(ParallelRecommenderTest, ByteIdenticalAtAnyThreadCount)
{
    const CeerPredictor &predictor = cheapPredictor();
    const Graph g = models::buildModel("inception_v3", 32);
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();
    WorkloadSpec workload{&g, 1'200'000, 32};

    const Recommendation serial =
        recommend(predictor, workload, catalog.instances(),
                  Objective::MinCost, Constraints{}, /*threads=*/1);
    for (int threads : {2, 4, 8}) {
        const Recommendation parallel =
            recommend(predictor, workload, catalog.instances(),
                      Objective::MinCost, Constraints{}, threads);
        EXPECT_EQ(parallel.bestIndex, serial.bestIndex)
            << threads << " threads";
        ASSERT_EQ(parallel.evaluations.size(),
                  serial.evaluations.size());
        for (std::size_t i = 0; i < serial.evaluations.size(); ++i) {
            SCOPED_TRACE(testing::Message()
                         << threads << " threads, candidate " << i);
            expectEvaluationsIdentical(serial.evaluations[i],
                                       parallel.evaluations[i]);
        }
    }
}

TEST(ParallelTrainerTest, ByteIdenticalAtAnyThreadCount)
{
    profile::CollectOptions collect;
    collect.iterations = 12;
    const profile::ProfileDataset dataset = profile::collectProfiles(
        {"vgg_11", "inception_v1"}, collect);

    TrainOptions serial_options;
    serial_options.threads = 1;
    std::stringstream serial_doc;
    trainCeer(dataset, serial_options).save(serial_doc);

    for (int threads : {2, 4, 8, 0}) {
        TrainOptions options;
        options.threads = threads;
        std::stringstream doc;
        trainCeer(dataset, options).save(doc);
        EXPECT_EQ(doc.str(), serial_doc.str())
            << "threads=" << threads;
    }
}

TEST(ParallelTrainerTest, ByteIdenticalWithObservabilityOn)
{
    // Trainer timers and counters must not change the fitted model:
    // the saved document matches the obs-off run byte for byte at
    // every thread count.
    profile::CollectOptions collect;
    collect.iterations = 12;
    const profile::ProfileDataset dataset = profile::collectProfiles(
        {"vgg_11", "inception_v1"}, collect);
    for (int threads : {1, 2, 4}) {
        SCOPED_TRACE(threads);
        TrainOptions options;
        options.threads = threads;
        std::stringstream off_doc, on_doc;
        {
            obs::ScopedEnable off(false);
            trainCeer(dataset, options).save(off_doc);
        }
        {
            obs::ScopedEnable on(true);
            trainCeer(dataset, options).save(on_doc);
        }
        EXPECT_EQ(on_doc.str(), off_doc.str());
    }
}

TEST(ParallelRecommenderTest, ByteIdenticalWithObservabilityOn)
{
    // The recommender's sweep span/timer and winner-margin gauge are
    // read-only: candidate scores and the winner match the obs-off
    // sweep bit for bit at every thread count.
    const CeerPredictor &predictor = cheapPredictor();
    const Graph g = models::buildModel("inception_v3", 32);
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();
    WorkloadSpec workload{&g, 1'200'000, 32};

    for (int threads : {1, 2, 4}) {
        SCOPED_TRACE(threads);
        Recommendation off_r, on_r;
        {
            obs::ScopedEnable off(false);
            off_r = recommend(predictor, workload, catalog.instances(),
                              Objective::MinCost, Constraints{},
                              threads);
        }
        {
            obs::ScopedEnable on(true);
            on_r = recommend(predictor, workload, catalog.instances(),
                             Objective::MinCost, Constraints{},
                             threads);
        }
        EXPECT_EQ(on_r.bestIndex, off_r.bestIndex);
        ASSERT_EQ(on_r.evaluations.size(), off_r.evaluations.size());
        for (std::size_t i = 0; i < off_r.evaluations.size(); ++i) {
            SCOPED_TRACE(testing::Message() << "candidate " << i);
            expectEvaluationsIdentical(off_r.evaluations[i],
                                       on_r.evaluations[i]);
        }
    }
}

/**
 * The constraint edge cases below run under both the serial and the
 * parallel sweep: constraint evaluation must not depend on who
 * computed the candidate.
 */
class RecommenderConstraintTest : public testing::TestWithParam<int>
{
  protected:
    int threads() const { return GetParam(); }
};

TEST_P(RecommenderConstraintTest, HourlyToleranceBoundary)
{
    const CeerPredictor &predictor = cheapPredictor();
    const Graph g = models::buildModel("vgg_11", 32);
    WorkloadSpec workload{&g, 100'000, 32};
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();
    const cloud::GpuInstance &p3 = catalog.find("p3.2xlarge");

    // Budget below the price: infeasible without tolerance...
    Constraints constraints;
    constraints.hourlyBudgetUsd = p3.hourlyUsd - 0.42;
    constraints.enforceGpuMemory = false;
    Recommendation r = recommend(predictor, workload, {p3},
                                 Objective::MinCost, constraints,
                                 threads());
    EXPECT_EQ(r.bestIndex, -1);
    EXPECT_FALSE(r.evaluations[0].withinHourly);

    // ...feasible when the paper's $0.42 tolerance closes the gap
    // exactly (budget + tolerance == price is within budget; the
    // comparison is <=, not <).
    constraints.hourlyToleranceUsd = 0.42;
    r = recommend(predictor, workload, {p3}, Objective::MinCost,
                  constraints, threads());
    EXPECT_EQ(r.bestIndex, 0);
    EXPECT_TRUE(r.evaluations[0].withinHourly);
}

TEST_P(RecommenderConstraintTest, GpuMemoryEnforcement)
{
    const CeerPredictor &predictor = cheapPredictor();
    // VGG-19 at batch 512 overflows every catalog GPU's memory.
    const Graph g = models::buildModel("vgg_19", 512);
    WorkloadSpec workload{&g, 100'000, 512};
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();

    Constraints enforced;
    enforced.enforceGpuMemory = true;
    const Recommendation strict =
        recommend(predictor, workload, catalog.instances(),
                  Objective::MinCost, enforced, threads());
    EXPECT_EQ(strict.bestIndex, -1);
    for (const CandidateEvaluation &evaluation : strict.evaluations)
        EXPECT_FALSE(evaluation.fitsMemory);

    Constraints relaxed;
    relaxed.enforceGpuMemory = false;
    const Recommendation loose =
        recommend(predictor, workload, catalog.instances(),
                  Objective::MinCost, relaxed, threads());
    EXPECT_GE(loose.bestIndex, 0);
    for (const CandidateEvaluation &evaluation : loose.evaluations)
        EXPECT_TRUE(evaluation.fitsMemory);
}

TEST_P(RecommenderConstraintTest, EmptyCandidateList)
{
    const CeerPredictor &predictor = cheapPredictor();
    const Graph g = models::buildModel("vgg_11", 32);
    WorkloadSpec workload{&g, 100'000, 32};
    const Recommendation r =
        recommend(predictor, workload, {}, Objective::MinCost,
                  Constraints{}, threads());
    EXPECT_EQ(r.bestIndex, -1);
    EXPECT_TRUE(r.evaluations.empty());
}

TEST_P(RecommenderConstraintTest, TieBreaksToFirstCandidate)
{
    const CeerPredictor &predictor = cheapPredictor();
    const Graph g = models::buildModel("vgg_11", 32);
    WorkloadSpec workload{&g, 100'000, 32};
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();
    // Identical twins: same GPU, k and price -> identical scores.
    cloud::GpuInstance first = catalog.find("p2.xlarge");
    cloud::GpuInstance second = first;
    first.name = "twin-a";
    second.name = "twin-b";
    Constraints constraints;
    constraints.enforceGpuMemory = false;
    const Recommendation r =
        recommend(predictor, workload, {first, second},
                  Objective::MinCost, constraints, threads());
    // Strict < in the reduction: the earlier candidate keeps a tie.
    EXPECT_EQ(r.bestIndex, 0);
    EXPECT_EQ(r.best().instance.name, "twin-a");
}

INSTANTIATE_TEST_SUITE_P(SerialAndParallel, RecommenderConstraintTest,
                         testing::Values(1, 4),
                         [](const testing::TestParamInfo<int> &info) {
                             return info.param == 1 ? "Serial"
                                                    : "Parallel4";
                         });

} // namespace
} // namespace core
} // namespace ceer
