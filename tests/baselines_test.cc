/**
 * @file
 * Tests for the baseline strategies and comparator predictors.
 */

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "cloud/instances.h"
#include "models/model_zoo.h"

namespace ceer {
namespace baselines {
namespace {

using cloud::InstanceCatalog;
using hw::GpuModel;

TEST(StrategyTest, CheapestIsOneGpuG3)
{
    const InstanceCatalog catalog = InstanceCatalog::awsOnDemand();
    const auto &pick = cheapestInstance(catalog.instances());
    EXPECT_EQ(pick.name, "g3s.xlarge");
    EXPECT_DOUBLE_EQ(pick.hourlyUsd, 0.75);
}

TEST(StrategyTest, LatestGenerationIsLargestP3)
{
    const InstanceCatalog catalog = InstanceCatalog::awsOnDemand();
    const auto &pick = latestGenerationInstance(catalog.instances());
    EXPECT_EQ(pick.gpu, GpuModel::V100);
    EXPECT_EQ(pick.numGpus, 4);
}

TEST(StrategyTest, LatestGenerationRespectsHourlyBudget)
{
    // Paper Sec. V ($3/hr + 6c): the largest P3 within budget is the
    // 1-GPU p3.2xlarge.
    const InstanceCatalog catalog = InstanceCatalog::awsOnDemand();
    const auto &pick =
        latestGenerationInstance(catalog.instances(), 3.06);
    EXPECT_EQ(pick.name, "p3.2xlarge");
    EXPECT_EQ(pick.numGpus, 1);
}

TEST(StrategyTest, EmptyOrUnsatisfiableIsFatal)
{
    const InstanceCatalog catalog = InstanceCatalog::awsOnDemand();
    EXPECT_DEATH(cheapestInstance({}), "empty");
    EXPECT_DEATH(latestGenerationInstance(catalog.instances(), 0.10),
                 "budget");
}

TEST(AblationOptionsTest, TogglesMatchTheirNames)
{
    EXPECT_FALSE(heavyOnlyOptions().includeLightAndCpu);
    EXPECT_TRUE(heavyOnlyOptions().includeComm);
    EXPECT_FALSE(noCommOptions().includeComm);
    EXPECT_TRUE(noCommOptions().includeLightAndCpu);
}

TEST(FlopsPredictorTest, OrdersGpusByPeakOnly)
{
    const graph::Graph g = models::buildInceptionV1(32);
    const FlopsPredictor predictor(0.5);
    const double p3 = predictor.predictIterationUs(g, GpuModel::V100);
    const double p2 = predictor.predictIterationUs(g, GpuModel::K80);
    EXPECT_GT(p2, p3);
    // Peak-FLOPS ratio V100/K80 is 5x, far from the observed ~10x
    // heavy-op gap: exactly the failure mode PALEO-style models have.
    EXPECT_NEAR(p2 / p3, 14.0 / 2.8, 0.1);
}

TEST(FlopsPredictorTest, TrainingHoursArithmetic)
{
    const graph::Graph g = models::buildInceptionV1(32);
    const FlopsPredictor predictor(0.5);
    const double iteration =
        predictor.predictIterationUs(g, GpuModel::V100);
    const double hours = predictor.predictTrainingHours(
        g, GpuModel::V100, 4, 1'200'000, 32);
    EXPECT_NEAR(hours, iteration * (1'200'000 / 128) / 3.6e9, 1e-9);
}

TEST(FlopsPredictorTest, RejectsBadUtilization)
{
    EXPECT_DEATH(FlopsPredictor(0.0), "utilization");
    EXPECT_DEATH(FlopsPredictor(1.5), "utilization");
}

} // namespace
} // namespace baselines
} // namespace ceer
