/**
 * @file
 * Tests for the baseline strategies, the comparator predictors and the
 * cross-predictor evaluation harness.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "baselines/evaluate.h"
#include "baselines/predictor.h"
#include "cloud/instances.h"
#include "hw/op_cost.h"
#include "models/model_zoo.h"
#include "profile/profiler.h"

namespace ceer {
namespace baselines {
namespace {

using cloud::InstanceCatalog;
using hw::GpuModel;

TEST(StrategyTest, CheapestIsOneGpuG3)
{
    const InstanceCatalog catalog = InstanceCatalog::awsOnDemand();
    const auto &pick = cheapestInstance(catalog.instances());
    EXPECT_EQ(pick.name, "g3s.xlarge");
    EXPECT_DOUBLE_EQ(pick.hourlyUsd, 0.75);
}

TEST(StrategyTest, LatestGenerationIsLargestP3)
{
    const InstanceCatalog catalog = InstanceCatalog::awsOnDemand();
    const auto &pick = latestGenerationInstance(catalog.instances());
    EXPECT_EQ(pick.gpu, GpuModel::V100);
    EXPECT_EQ(pick.numGpus, 4);
}

TEST(StrategyTest, LatestGenerationRespectsHourlyBudget)
{
    // Paper Sec. V ($3/hr + 6c): the largest P3 within budget is the
    // 1-GPU p3.2xlarge.
    const InstanceCatalog catalog = InstanceCatalog::awsOnDemand();
    const auto &pick =
        latestGenerationInstance(catalog.instances(), 3.06);
    EXPECT_EQ(pick.name, "p3.2xlarge");
    EXPECT_EQ(pick.numGpus, 1);
}

TEST(StrategyTest, EmptyOrUnsatisfiableIsFatal)
{
    const InstanceCatalog catalog = InstanceCatalog::awsOnDemand();
    EXPECT_DEATH(cheapestInstance({}), "empty");
    EXPECT_DEATH(latestGenerationInstance(catalog.instances(), 0.10),
                 "budget");
}

TEST(AblationOptionsTest, TogglesMatchTheirNames)
{
    EXPECT_FALSE(heavyOnlyOptions().includeLightAndCpu);
    EXPECT_TRUE(heavyOnlyOptions().includeComm);
    EXPECT_FALSE(noCommOptions().includeComm);
    EXPECT_TRUE(noCommOptions().includeLightAndCpu);
}

TEST(FlopsPredictorTest, OrdersGpusByPeakOnly)
{
    const graph::Graph g = models::buildInceptionV1(32);
    const FlopsPredictor predictor(0.5);
    const double p3 = predictor.predictIterationUs(g, GpuModel::V100);
    const double p2 = predictor.predictIterationUs(g, GpuModel::K80);
    EXPECT_GT(p2, p3);
    // Peak-FLOPS ratio V100/K80 is 5x, far from the observed ~10x
    // heavy-op gap: exactly the failure mode PALEO-style models have.
    EXPECT_NEAR(p2 / p3, 14.0 / 2.8, 0.1);
}

TEST(FlopsPredictorTest, TrainingHoursArithmetic)
{
    const graph::Graph g = models::buildInceptionV1(32);
    const FlopsPredictor predictor(0.5);
    const double iteration =
        predictor.predictIterationUs(g, GpuModel::V100);
    const double hours = predictor.predictTrainingHours(
        g, GpuModel::V100, 4, 1'200'000, 32);
    EXPECT_NEAR(hours, iteration * (1'200'000 / 128) / 3.6e9, 1e-9);
}

TEST(FlopsPredictorTest, RejectsBadUtilization)
{
    EXPECT_DEATH(FlopsPredictor(0.0), "utilization");
    EXPECT_DEATH(FlopsPredictor(1.5), "utilization");
}

TEST(FlopsPredictorTest, PinsUtilizationConstant)
{
    // The PALEO-style estimate is exactly sum(flops) over GPU nodes
    // divided by peak * utilization, with the paper-default 50%
    // utilization. Pinned so a silent constant change cannot slip by.
    const graph::Graph g = models::buildInceptionV1(32);
    double total_flops = 0.0;
    for (const graph::Node &node : g.nodes()) {
        if (node.device() == graph::Device::Gpu)
            total_flops += hw::opCost(node).flops;
    }
    const hw::GpuSpec &spec = hw::gpuSpec(GpuModel::V100);
    const FlopsPredictor defaulted;
    EXPECT_DOUBLE_EQ(defaulted.predictIterationUs(g, GpuModel::V100),
                     total_flops / (spec.peakTflops * 0.5 * 1e6));
}

TEST(FlopsPredictorTest, ZeroFlopGraphPredictsZero)
{
    // No GPU work means a zero estimate: the model has no launch
    // overhead or floor term (unlike the trained engines' 1us op
    // floor), which is itself part of its failure mode.
    const graph::Graph empty("empty");
    const FlopsPredictor predictor(0.5);
    for (const GpuModel gpu : hw::allGpuModels())
        EXPECT_EQ(predictor.predictIterationUs(empty, gpu), 0.0);
}

TEST(StrategyTest, NoLatestGenerationCandidateIsFatal)
{
    // A candidate list with no P3 at all (not just none in budget)
    // must die with the contextual message, not return garbage.
    InstanceCatalog catalog;
    catalog.add({"g3s.xlarge", GpuModel::M60, 1, 0.75, false});
    catalog.add({"p2.xlarge", GpuModel::K80, 1, 0.90, false});
    EXPECT_DEATH(latestGenerationInstance(catalog.instances()),
                 "no P3 candidate");
}

// --- The evaluation harness ---

/** Shared fixture: a small profile dataset collected once. */
const profile::ProfileDataset &
evalDataset()
{
    static const profile::ProfileDataset dataset = [] {
        profile::CollectOptions options;
        options.iterations = 8;
        return profile::collectProfiles({"vgg_11", "inception_v1"},
                                        options);
    }();
    return dataset;
}

TEST(EvalSweepTest, ParallelSweepIsByteIdentical)
{
    const std::vector<std::unique_ptr<Predictor>> predictors =
        makeAllPredictors();
    EvalOptions options;
    options.models = {"alexnet", "vgg_19"};
    options.ks = {1, 2, 4};
    options.evalIterations = 5;

    std::string serial_csv, serial_cbf;
    for (const int threads : {1, 4}) {
        options.threads = threads;
        const EvalReport report =
            runEvaluation(evalDataset(), predictors, options);
        std::ostringstream csv, cbf;
        report.saveCsv(csv);
        report.saveCbf(cbf);
        if (threads == 1) {
            serial_csv = csv.str();
            serial_cbf = cbf.str();
        } else {
            EXPECT_EQ(serial_csv, csv.str());
            EXPECT_EQ(serial_cbf, cbf.str());
        }
    }
    EXPECT_FALSE(serial_csv.empty());
}

TEST(EvalSweepTest, ReportCoversTheFullGrid)
{
    const std::vector<std::unique_ptr<Predictor>> predictors =
        makeAllPredictors();
    EvalOptions options;
    options.models = {"alexnet"};
    options.ks = {1, 2};
    options.evalIterations = 5;
    const EvalReport report =
        runEvaluation(evalDataset(), predictors, options);
    // predictors x models x gpus x ks cells, one model row per
    // (predictor, model), one summary row per predictor.
    EXPECT_EQ(report.cells.size(), predictors.size() * 1 * 4 * 2);
    EXPECT_EQ(report.modelRows.size(), predictors.size());
    EXPECT_EQ(report.summary.size(), predictors.size());
    for (const EvalSummaryRow &row : report.summary) {
        EXPECT_GE(row.mapePct, 0.0);
        EXPECT_GE(row.rmseUs, 0.0);
        EXPECT_GE(row.agreementRate, 0.0);
        EXPECT_LE(row.agreementRate, 1.0);
    }
    // Registry order is preserved in the report.
    for (std::size_t p = 0; p < predictors.size(); ++p)
        EXPECT_EQ(report.summary[p].predictor, predictors[p]->name());
}

TEST(EvalSweepTest, EmptyDatasetIsFatal)
{
    const profile::ProfileDataset empty;
    const std::vector<std::unique_ptr<Predictor>> predictors =
        makeAllPredictors();
    EvalOptions options;
    options.models = {"alexnet"};
    EXPECT_DEATH(runEvaluation(empty, predictors, options),
                 "empty profile dataset");
}

TEST(EvalSweepTest, EmptyGridOrPredictorListIsFatal)
{
    const std::vector<std::unique_ptr<Predictor>> predictors =
        makeAllPredictors();
    EvalOptions options;
    EXPECT_DEATH(runEvaluation(evalDataset(), predictors, options),
                 "no models");
    options.models = {"alexnet"};
    EXPECT_DEATH(
        runEvaluation(evalDataset(), std::vector<Predictor *>{},
                      options),
        "no predictors");
    options.ks = {};
    EXPECT_DEATH(runEvaluation(evalDataset(), predictors, options),
                 "empty GPU or k grid");
    options.ks = {0};
    EXPECT_DEATH(runEvaluation(evalDataset(), predictors, options),
                 "invalid width");
}

// --- The predictor registry ---

TEST(PredictorRegistryTest, HasAtLeastSixEngines)
{
    EXPECT_GE(allPredictorNames().size(), 6u);
    for (const std::string &name : allPredictorNames())
        EXPECT_EQ(makePredictor(name)->name(), name);
}

TEST(PredictorRegistryTest, UnknownNameIsFatal)
{
    EXPECT_DEATH(makePredictor("linear_scaling"), "unknown predictor");
    EXPECT_DEATH(makePredictors({"ceer", "nope"}), "unknown predictor");
}

TEST(PredictorRegistryTest, MakePredictorsPreservesRequestOrder)
{
    const auto predictors = makePredictors({"profet", "ceer"});
    ASSERT_EQ(predictors.size(), 2u);
    EXPECT_EQ(predictors[0]->name(), "profet");
    EXPECT_EQ(predictors[1]->name(), "ceer");
    // Empty request means every registered engine, registry order.
    EXPECT_EQ(makePredictors({}).size(), allPredictorNames().size());
}

/** The fixture dataset re-serialized without the rows named by @p drop
    ("op" rows for one GPU, or every "iter" row). */
profile::ProfileDataset
datasetWithout(const std::string &kind, const std::string &gpu)
{
    std::ostringstream csv;
    evalDataset().saveCsv(csv);
    std::istringstream lines(csv.str());
    std::ostringstream filtered;
    std::string line;
    while (std::getline(lines, line)) {
        const bool is_kind =
            line.rfind(kind + ",", 0) == 0;
        const bool mentions_gpu =
            gpu.empty() || line.find("," + gpu + ",") != std::string::npos;
        if (is_kind && mentions_gpu)
            continue;
        filtered << line << "\n";
    }
    std::istringstream in(filtered.str());
    profile::ProfileDataset dataset;
    std::string error;
    EXPECT_TRUE(
        profile::ProfileDataset::tryLoadCsv(in, &dataset, &error))
        << error;
    return dataset;
}

TEST(PredictorRegistryTest, MissingTrainingRowsAreContextualFatals)
{
    // PROFET fits on the reference GPU's op rows; DNNAbacus fits on
    // run-level iteration rows. Each engine must name itself and what
    // is missing, not crash or mispredict.
    const profile::ProfileDataset no_ref =
        datasetWithout("op", "V100");
    EXPECT_DEATH(makePredictor("profet")->trainFrom(no_ref),
                 "profet.*reference GPU");
    const profile::ProfileDataset no_iters = datasetWithout("iter", "");
    EXPECT_DEATH(makePredictor("dnnabacus")->trainFrom(no_iters),
                 "dnnabacus.*iteration profiles");
    const profile::ProfileDataset empty;
    EXPECT_DEATH(makePredictor("ceer")->trainFrom(empty),
                 "ceer.*no op rows");
    EXPECT_DEATH(makePredictor("paleo_flops")->trainFrom(empty),
                 "paleo_flops.*empty");
}

TEST(PredictorRegistryTest, PredictBeforeTrainIsFatal)
{
    const graph::Graph g = models::buildInceptionV1(32);
    EXPECT_DEATH(makePredictor("ceer")->predictIterationUs(
                     g, GpuModel::V100, 1),
                 "before trainFrom");
}

} // namespace
} // namespace baselines
} // namespace ceer
