/**
 * @file
 * Failure-injection tests: malformed persisted artifacts, bad flag
 * input and misuse of the public API must fail loudly (fatal/panic)
 * rather than silently corrupting an experiment.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "core/ceer_model.h"
#include "graph/builder.h"
#include "graph/shape_inference.h"
#include "profile/profiler.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/stats.h"

namespace ceer {
namespace {

// --- ProfileDataset CSV ---

TEST(CsvRobustnessTest, TruncatedRowIsFatal)
{
    std::istringstream in(
        "kind,model,gpu,op,device,occurrences,count,mean_us,stddev_us,"
        "features,samples\n"
        "op,vgg_11,V100,Conv2D\n");
    EXPECT_DEATH(profile::ProfileDataset::loadCsv(in), "fields");
}

TEST(CsvRobustnessTest, UnknownGpuIsFatal)
{
    std::istringstream in(
        "kind,model,gpu,op,device,occurrences,count,mean_us,stddev_us,"
        "features,samples\n"
        "op,vgg_11,H100,Conv2D,gpu,1,1,5,0,1;1;0;1,5\n");
    EXPECT_DEATH(profile::ProfileDataset::loadCsv(in), "bad GPU");
}

TEST(CsvRobustnessTest, UnknownOpIsFatal)
{
    std::istringstream in(
        "kind,model,gpu,op,device,occurrences,count,mean_us,stddev_us,"
        "features,samples\n"
        "op,vgg_11,V100,FlashAttention,gpu,1,1,5,0,1;1;0;1,5\n");
    EXPECT_DEATH(profile::ProfileDataset::loadCsv(in), "bad op");
}

TEST(CsvRobustnessTest, UnknownRowKindIsFatal)
{
    std::istringstream in(
        "kind,model,gpu,op,device,occurrences,count,mean_us,stddev_us,"
        "features,samples\n"
        "blob,vgg_11,V100,Conv2D,gpu,1,1,5,0,1;1;0;1,5\n");
    EXPECT_DEATH(profile::ProfileDataset::loadCsv(in), "row kind");
}

TEST(CsvRobustnessTest, EmptyDocumentLoadsEmptyDataset)
{
    std::istringstream in(
        "kind,model,gpu,op,device,occurrences,count,mean_us,stddev_us,"
        "features,samples\n");
    const auto dataset = profile::ProfileDataset::loadCsv(in);
    EXPECT_TRUE(dataset.ops().empty());
    EXPECT_TRUE(dataset.iterations().empty());
}

TEST(CsvRobustnessTest, GarbledNumericFieldIsFatalWithContext)
{
    // A single garbled byte in a numeric field used to escape as an
    // uncaught std::invalid_argument; it must now die through fatal()
    // with row/column context.
    std::istringstream in(
        "kind,model,gpu,op,device,occurrences,count,mean_us,stddev_us,"
        "features,samples\n"
        "op,vgg_11,V100,Conv2D,gpu,1,1,5x0,0,1;1;0;1,5\n");
    EXPECT_DEATH(profile::ProfileDataset::loadCsv(in), "mean_us");
}

TEST(CsvRobustnessTest, GarbledCountAndFeaturesAreFatal)
{
    std::istringstream bad_count(
        "kind,model,gpu,op,device,occurrences,count,mean_us,stddev_us,"
        "features,samples\n"
        "op,vgg_11,V100,Conv2D,gpu,1,-4,5,0,1;1;0;1,5\n");
    EXPECT_DEATH(profile::ProfileDataset::loadCsv(bad_count), "count");
    std::istringstream bad_feature(
        "kind,model,gpu,op,device,occurrences,count,mean_us,stddev_us,"
        "features,samples\n"
        "op,vgg_11,V100,Conv2D,gpu,1,1,5,0,1;zap;0;1,5\n");
    EXPECT_DEATH(profile::ProfileDataset::loadCsv(bad_feature),
                 "features");
}

TEST(CsvRobustnessTest, ImplausiblyLargeCountIsFatalNotAHang)
{
    // The moment reconstruction loops `count` times; a corrupt count
    // must be rejected, not spun on for 10^18 iterations.
    std::istringstream in(
        "kind,model,gpu,op,device,occurrences,count,mean_us,stddev_us,"
        "features,samples\n"
        "op,vgg_11,V100,Conv2D,gpu,1,999999999999999999,5,0,1;1;0;1,"
        "5\n");
    EXPECT_DEATH(profile::ProfileDataset::loadCsv(in), "count");
}

TEST(CsvRobustnessTest, GarbledIterationRowIsFatal)
{
    std::istringstream in(
        "kind,model,gpu,op,device,occurrences,count,mean_us,stddev_us,"
        "features,samples\n"
        "iter,vgg_11,V100,2,12??34,,,100,90,10,\n");
    EXPECT_DEATH(profile::ProfileDataset::loadCsv(in), "param_count");
}

TEST(CsvRobustnessTest, UnterminatedQuoteIsFatal)
{
    std::istringstream in(
        "kind,model,gpu,op,device,occurrences,count,mean_us,stddev_us,"
        "features,samples\n"
        "op,\"vgg_11,V100,Conv2D,gpu,1,1,5,0,1;1;0;1,5\n");
    EXPECT_DEATH(profile::ProfileDataset::loadCsv(in), "unterminated");
}

TEST(CsvRobustnessTest, TryLoadRecoversInsteadOfDying)
{
    // The cache-facing entry point must degrade every corruption to a
    // boolean failure the caller can turn into a miss.
    const char *broken[] = {
        // Truncated mid-row.
        "kind,model,gpu,op,device,occurrences,count,mean_us,stddev_us,"
        "features,samples\nop,vgg_11,V100,Conv2D,gpu,1,1,5",
        // Garbled numeric field.
        "kind,model,gpu,op,device,occurrences,count,mean_us,stddev_us,"
        "features,samples\nop,vgg_11,V100,Conv2D,gpu,1,1,#,0,1,5",
        // Broken quoting.
        "kind,model,gpu,op,device,occurrences,count,mean_us,stddev_us,"
        "features,samples\nop,vgg_11,V100,Conv2D,\"gpu,1,1,5,0,1,5",
    };
    for (const char *text : broken) {
        SCOPED_TRACE(text);
        std::istringstream in(text);
        profile::ProfileDataset dataset;
        std::string error;
        EXPECT_FALSE(profile::ProfileDataset::tryLoadCsv(in, &dataset,
                                                         &error));
        EXPECT_FALSE(error.empty());
    }
}

// --- CeerModel text files ---

TEST(ModelFileTest, MissingHeaderIsFatal)
{
    std::istringstream in("not a ceer model\n");
    EXPECT_DEATH(core::CeerModel::load(in), "header");
}

TEST(ModelFileTest, UnknownTagIsFatal)
{
    std::istringstream in("ceer_model v1\nflux_capacitor 1.21\n");
    EXPECT_DEATH(core::CeerModel::load(in), "unknown tag");
}

TEST(ModelFileTest, BadOpNameIsFatal)
{
    std::istringstream in("ceer_model v1\nheavy_ops NotAnOp\n");
    EXPECT_DEATH(core::CeerModel::load(in), "bad op");
}

TEST(ModelFileTest, TruncatedLinesAreFatal)
{
    std::istringstream short_median("ceer_model v1\nlight_median_us\n");
    EXPECT_DEATH(core::CeerModel::load(short_median), "truncated");
    std::istringstream short_fit(
        "ceer_model v1\ncomm_fit V100 2\n");
    EXPECT_DEATH(core::CeerModel::load(short_fit), "truncated");
    std::istringstream zero_k(
        "ceer_model v1\ncomm_fit V100 0 0.9 1;1,1\n");
    EXPECT_DEATH(core::CeerModel::load(zero_k), "k must be");
}

TEST(ModelFileTest, EmptyStreamIsFatal)
{
    std::istringstream in("");
    EXPECT_DEATH(core::CeerModel::load(in), "header");
}

// --- Flags ---

TEST(FlagsRobustnessTest, UnknownFlagIsFatal)
{
    util::Flags flags;
    flags.defineInt("iters", 10, "iterations");
    const char *argv[] = {"prog", "--itres", "10"};
    EXPECT_DEATH(flags.parse(3, const_cast<char **>(argv)),
                 "unknown flag");
}

TEST(FlagsRobustnessTest, NonNumericValueIsFatal)
{
    util::Flags flags;
    flags.defineInt("iters", 10, "iterations");
    const char *argv[] = {"prog", "--iters", "ten"};
    EXPECT_DEATH(flags.parse(3, const_cast<char **>(argv)), "integer");
}

TEST(FlagsRobustnessTest, MissingValueIsFatal)
{
    util::Flags flags;
    flags.defineString("out", "", "output");
    const char *argv[] = {"prog", "--out"};
    EXPECT_DEATH(flags.parse(2, const_cast<char **>(argv)),
                 "expects a value");
}

TEST(FlagsRobustnessTest, WrongTypeAccessPanics)
{
    util::Flags flags;
    flags.defineInt("iters", 10, "iterations");
    const char *argv[] = {"prog"};
    flags.parse(1, const_cast<char **>(argv));
    EXPECT_DEATH(flags.getString("iters"), "accessed as");
    EXPECT_DEATH(flags.getInt("missing"), "never defined");
}

// --- Graph construction misuse ---

TEST(GraphRobustnessTest, ForwardReferenceInputPanics)
{
    graph::Graph g("bad");
    EXPECT_DEATH(g.addNode("x", graph::OpType::Relu, {0}, {},
                           graph::TensorShape{4}),
                 "invalid");
}

TEST(GraphRobustnessTest, ValidKernelLargerThanInputPanics)
{
    EXPECT_DEATH(graph::convOutputDim(5, 7, 1,
                                      graph::PaddingMode::Valid),
                 "larger than");
}

TEST(GraphRobustnessTest, MismatchedResidualAddPanics)
{
    graph::GraphBuilder b("bad", 4);
    const auto x = b.imageInput(8, 8, 3);
    graph::ConvOptions options;
    options.batchNorm = false;
    options.relu = false;
    const auto a = b.conv2d(x, 8, 3, 3, options, "a");
    const auto c = b.conv2d(x, 16, 3, 3, options, "c");
    EXPECT_DEATH(b.add(a, c, "residual"), "shape mismatch");
}

TEST(GraphRobustnessTest, ZeroBatchPanics)
{
    EXPECT_DEATH(graph::GraphBuilder("bad", 0), "batch");
}

// --- Statistics misuse ---

TEST(StatsRobustnessTest, ZeroCapacityReservoirPanics)
{
    EXPECT_DEATH(util::SampleReservoir(0), "capacity");
}

TEST(StatsRobustnessTest, MapeSizeMismatchPanics)
{
    EXPECT_DEATH(
        util::meanAbsolutePercentageError({1.0, 2.0}, {1.0}),
        "mismatch");
}

} // namespace
} // namespace ceer
