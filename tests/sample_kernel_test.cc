/**
 * @file
 * Tests for the batched stateless sampling kernel: fastExp accuracy,
 * counter-based normal generation (purity, distribution, agreement
 * with the scalar inverse-CDF path), and block/chunk equivalences of
 * the lane accumulators.
 */

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "sim/sample_kernel.h"
#include "util/stats.h"

namespace ceer {
namespace sim {
namespace kernel {
namespace {

std::uint64_t
bitsOf(double x)
{
    std::uint64_t u;
    std::memcpy(&u, &x, sizeof u);
    return u;
}

TEST(FastExpTest, MatchesStdExpOnTheSamplingRange)
{
    // The simulator only ever evaluates |sigma * z| <= ~4, but hold
    // the documented accuracy bound over a much wider range.
    double worst = 0.0;
    for (double x = -30.0; x <= 30.0; x += 1.0 / 512.0) {
        const double want = std::exp(x);
        const double got = fastExp(x);
        worst = std::max(worst, std::abs(got - want) / want);
    }
    EXPECT_LT(worst, 1e-13);
}

TEST(FastExpTest, ClampSaturatesInsteadOfCorrupting)
{
    // Far outside the clamp the result must stay finite and ordered,
    // not wrap the exponent bit arithmetic into garbage.
    EXPECT_TRUE(std::isfinite(fastExp(1e6)));
    EXPECT_TRUE(std::isfinite(fastExp(-1e6)));
    EXPECT_DOUBLE_EQ(fastExp(1e6), fastExp(700.0));
    EXPECT_DOUBLE_EQ(fastExp(-1e6), fastExp(-700.0));
    EXPECT_GT(fastExp(700.0), 1e300);
    EXPECT_GT(fastExp(-700.0), 0.0);
}

TEST(NormalBlockTest, MatchesScalarInverseCdfPath)
{
    // The blocked generator (including its vectorized clones) must
    // agree bit for bit with the scalar counter-based definition:
    // inverseNormalCdf(uniform(hashMix(key, slot))).
    const std::uint64_t key = 0xFEEDFACEull;
    std::vector<double> z(kBlock);
    normalBlock(key, 0, kBlock, z.data());
    for (std::size_t i = 0; i < kBlock; ++i) {
        const double u = util::uniformFromBits(
            util::hashMix(key, static_cast<std::uint64_t>(i)));
        ASSERT_EQ(bitsOf(z[i]), bitsOf(util::inverseNormalCdf(u)))
            << "slot " << i;
    }
}

TEST(NormalBlockTest, SubRangesRegenerateIndependently)
{
    // Slot addressing is absolute, so any sub-range can be recomputed
    // without generating its prefix — the property that lets lanes be
    // chunked and iterations run on any thread.
    const std::uint64_t key = 42;
    std::vector<double> all(256), part(64);
    normalBlock(key, 0, 256, all.data());
    normalBlock(key, 100, 64, part.data());
    for (std::size_t i = 0; i < 64; ++i)
        ASSERT_EQ(bitsOf(part[i]), bitsOf(all[100 + i]));
}

TEST(NormalBlockTest, MomentsMatchStandardNormal)
{
    util::RunningStats stats;
    std::vector<double> z(kBlock);
    for (std::uint64_t key = 0; key < 100; ++key) {
        normalBlock(util::hashMix(7, key), 0, kBlock, z.data());
        for (double v : z)
            stats.add(v);
    }
    EXPECT_NEAR(stats.mean(), 0.0, 0.02);
    EXPECT_NEAR(stats.variance(), 1.0, 0.03);
    // Tail draws must actually occur (the fix-up pass is exercised).
    EXPECT_LT(stats.min(), -2.5);
    EXPECT_GT(stats.max(), 2.5);
}

TEST(LognormalAccumulateTest, MatchesElementwiseProducts)
{
    const std::size_t n = 37;
    std::vector<double> base(n), sigma(n), z(n), times(n);
    for (std::size_t i = 0; i < n; ++i) {
        base[i] = 5.0 + static_cast<double>(i);
        sigma[i] = 0.02 + 0.001 * static_cast<double>(i);
        z[i] = std::sin(static_cast<double>(i)) * 2.0;
    }
    const double sum =
        lognormalAccumulate(base.data(), sigma.data(), z.data(), n,
                            times.data());
    double expected = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(bitsOf(times[i]),
                  bitsOf(base[i] * fastExp(sigma[i] * z[i])));
        expected += times[i];
    }
    // The kernel sums in a striped order; values agree to rounding.
    EXPECT_NEAR(sum, expected, expected * 1e-12);
}

TEST(GpuLaneTest, ChunkingIsInvisible)
{
    // A lane longer than one block must equal the concatenation of its
    // blocks: chunk boundaries may not change any sample.
    const std::size_t n = kBlock + 173;
    std::vector<double> base(n, 3.0), sigma(n, 0.05);
    std::vector<double> scratch(kBlock), times(n);
    const std::uint64_t stream_key = replicaStreamKey(11, 5, 0);
    const double sum = gpuLaneUs(stream_key, base.data(), sigma.data(),
                                 n, scratch.data(), times.data());

    const std::uint64_t lane_key = util::hashMix(stream_key, kGpuLane);
    std::vector<double> z(kBlock);
    double expected = 0.0;
    std::size_t checked = 0;
    for (std::size_t start = 0; start < n; start += kBlock) {
        const std::size_t len = std::min(kBlock, n - start);
        normalBlock(lane_key, start, len, z.data());
        for (std::size_t i = 0; i < len; ++i) {
            const double t = base[start + i] *
                             fastExp(sigma[start + i] * z[i]);
            ASSERT_EQ(bitsOf(times[start + i]), bitsOf(t));
            expected += t;
            ++checked;
        }
    }
    EXPECT_EQ(checked, n);
    EXPECT_NEAR(sum, expected, expected * 1e-12);
}

TEST(CpuLaneTest, DeterministicAndGammaDistributed)
{
    const std::size_t n = 4;
    std::vector<double> mean(n, 100.0), times_a(n), times_b(n);
    const std::uint64_t stream_key = replicaStreamKey(3, 9, 1);
    const double a =
        cpuLaneUs(stream_key, mean.data(), n, times_a.data());
    const double b =
        cpuLaneUs(stream_key, mean.data(), n, times_b.data());
    EXPECT_EQ(bitsOf(a), bitsOf(b));
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(bitsOf(times_a[i]), bitsOf(times_b[i]));

    // Gamma(k, 1/k) has mean 1, so lane means track the slot means.
    util::RunningStats stats;
    for (std::uint64_t iter = 0; iter < 4000; ++iter)
        stats.add(cpuLaneUs(replicaStreamKey(3, iter, 1), mean.data(),
                            n, nullptr));
    EXPECT_NEAR(stats.mean(), 400.0, 10.0);
}

TEST(ReplicaStreamKeyTest, DistinctAcrossAllAxes)
{
    EXPECT_NE(replicaStreamKey(1, 0, 0), replicaStreamKey(2, 0, 0));
    EXPECT_NE(replicaStreamKey(1, 0, 0), replicaStreamKey(1, 1, 0));
    EXPECT_NE(replicaStreamKey(1, 0, 0), replicaStreamKey(1, 0, 1));
    EXPECT_EQ(replicaStreamKey(1, 5, 3), replicaStreamKey(1, 5, 3));
}

} // namespace
} // namespace kernel
} // namespace sim
} // namespace ceer
