/**
 * @file
 * Tests for the GPU training-memory estimator and its integration into
 * the recommender's feasibility checks.
 */

#include <gtest/gtest.h>

#include "cloud/instances.h"
#include "core/recommender.h"
#include "core/trainer.h"
#include "hw/memory.h"
#include "models/model_zoo.h"
#include "profile/profiler.h"

namespace ceer {
namespace hw {
namespace {

using graph::Graph;

TEST(MemoryTest, ComponentsArePositiveAndSumUp)
{
    const Graph g = models::buildVgg(19, 32);
    const MemoryEstimate estimate = estimateTrainingMemory(g);
    EXPECT_GT(estimate.paramBytes, 500e6); // ~144M params * 4B.
    EXPECT_DOUBLE_EQ(estimate.gradientBytes, estimate.paramBytes);
    // Vanilla SGD keeps no slot variables.
    EXPECT_DOUBLE_EQ(estimate.optimizerBytes, 0.0);
    EXPECT_GT(estimate.activationBytes, 1e9);
    EXPECT_NEAR(estimate.totalBytes(),
                2.0 * estimate.paramBytes + estimate.activationBytes +
                    estimate.workspaceBytes,
                1.0);
    EXPECT_NEAR(estimate.totalGB(), estimate.totalBytes() / 1e9, 1e-9);
}

TEST(MemoryTest, ActivationsScaleWithBatchParamsDoNot)
{
    const MemoryEstimate at32 =
        estimateTrainingMemory(models::buildResNetV2(50, 32));
    const MemoryEstimate at64 =
        estimateTrainingMemory(models::buildResNetV2(50, 64));
    EXPECT_DOUBLE_EQ(at64.paramBytes, at32.paramBytes);
    EXPECT_NEAR(at64.activationBytes / at32.activationBytes, 2.0, 0.05);
}

TEST(MemoryTest, RetainsOnlyBackwardReferencedActivations)
{
    // Upper bound: retained activations must be strictly less than the
    // sum of all forward outputs (BN outputs etc. are not retained).
    const Graph g = models::buildResNetV2(101, 32);
    double all_forward = 0.0;
    for (const auto &node : g.nodes()) {
        if (node.device() == graph::Device::Gpu && !node.isGradient)
            all_forward += static_cast<double>(node.outputBytes());
    }
    const MemoryEstimate estimate = estimateTrainingMemory(g);
    EXPECT_LT(estimate.activationBytes, 0.8 * all_forward);
    EXPECT_GT(estimate.activationBytes, 0.3 * all_forward);
}

TEST(MemoryTest, EveryZooModelFitsEverywhereAtDefaultBatch)
{
    // The paper trains all 12 CNNs at batch 32 on all four GPUs, so at
    // that batch everything must fit on the smallest (8 GB M60) —
    // except the deepest models, which genuinely exceed 8 GB.
    for (const std::string &name : models::allModelNames()) {
        const Graph g = models::buildModel(name, 32);
        EXPECT_TRUE(fitsInGpuMemory(g, GpuModel::V100)) << name;
        EXPECT_TRUE(fitsInGpuMemory(g, GpuModel::K80)) << name;
    }
    EXPECT_TRUE(
        fitsInGpuMemory(models::buildAlexNet(32), GpuModel::M60));
    EXPECT_TRUE(
        fitsInGpuMemory(models::buildVgg(19, 32), GpuModel::M60));
}

TEST(MemoryTest, LargeBatchOverflowsSmallGpus)
{
    const Graph g = models::buildVgg(19, 128);
    EXPECT_FALSE(fitsInGpuMemory(g, GpuModel::M60));  // 8 GB.
    EXPECT_TRUE(fitsInGpuMemory(g, GpuModel::K80));   // 12 GB.
    EXPECT_TRUE(fitsInGpuMemory(g, GpuModel::V100));  // 16 GB.
}

TEST(MemoryTest, MarginTightensTheCheck)
{
    const Graph g = models::buildResNetV2(200, 32); // ~9.2 GB.
    EXPECT_TRUE(fitsInGpuMemory(g, GpuModel::K80, 0.05));
    EXPECT_FALSE(fitsInGpuMemory(g, GpuModel::K80, 0.30));
}

TEST(MemoryRecommenderTest, OversizedBatchExcludesSmallGpuFamilies)
{
    // Train a tiny Ceer model and recommend for a batch that only
    // larger-memory GPUs can hold.
    profile::CollectOptions options;
    options.iterations = 20;
    options.maxGpus = 2;
    const core::CeerModel model = core::trainCeer(
        profile::collectProfiles({"vgg_11", "inception_v1"}, options));
    const core::CeerPredictor predictor(model);

    const Graph g = models::buildVgg(19, 128);
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();
    core::WorkloadSpec workload{&g, 128000, 128};
    const core::Recommendation result =
        core::recommend(predictor, workload, catalog.instances(),
                        core::Objective::MinCost);
    for (const auto &evaluation : result.evaluations) {
        if (evaluation.instance.gpu == GpuModel::M60) {
            EXPECT_FALSE(evaluation.fitsMemory)
                << evaluation.instance.name;
            EXPECT_FALSE(evaluation.feasible());
        } else {
            EXPECT_TRUE(evaluation.fitsMemory)
                << evaluation.instance.name;
        }
    }
    ASSERT_GE(result.bestIndex, 0);
    EXPECT_NE(result.best().instance.gpu, GpuModel::M60);

    // Disabling the check restores the old behaviour.
    core::Constraints no_check;
    no_check.enforceGpuMemory = false;
    const core::Recommendation unchecked =
        core::recommend(predictor, workload, catalog.instances(),
                        core::Objective::MinCost, no_check);
    for (const auto &evaluation : unchecked.evaluations)
        EXPECT_TRUE(evaluation.fitsMemory);
}

} // namespace
} // namespace hw
} // namespace ceer
