/**
 * @file
 * Tests for the hardware model: specs, analytic op costs, timing-model
 * calibration against the paper's aggregate ratios, noise structure,
 * and the communication model.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "hw/device_model.h"
#include "hw/gpu_spec.h"
#include "hw/interconnect.h"
#include "hw/op_cost.h"
#include "util/stats.h"

namespace ceer {
namespace hw {
namespace {

using graph::Node;
using graph::OpAttrs;
using graph::OpType;
using graph::PaddingMode;
using graph::TensorShape;

Node
makeNode(OpType type, std::vector<TensorShape> input_shapes,
         TensorShape output, OpAttrs attrs = {})
{
    Node node;
    node.id = 0;
    node.name = "test";
    node.type = type;
    node.inputShapes = std::move(input_shapes);
    node.outputShape = std::move(output);
    node.attrs = attrs;
    return node;
}

/** A representative large conv: 3x3x64->64 on 56x56, batch 32. */
Node
bigConv()
{
    OpAttrs attrs;
    attrs.kernelH = attrs.kernelW = 3;
    attrs.strideH = attrs.strideW = 1;
    attrs.filterShape = TensorShape{3, 3, 64, 64};
    return makeNode(OpType::Conv2D,
                    {TensorShape::nhwc(32, 56, 56, 64),
                     TensorShape{3, 3, 64, 64}},
                    TensorShape::nhwc(32, 56, 56, 64), attrs);
}

Node
bigPool()
{
    OpAttrs attrs;
    attrs.kernelH = attrs.kernelW = 2;
    attrs.strideH = attrs.strideW = 2;
    return makeNode(OpType::MaxPool,
                    {TensorShape::nhwc(32, 112, 112, 128)},
                    TensorShape::nhwc(32, 56, 56, 128), attrs);
}

TEST(GpuSpecTest, FourModelsWithPaperFamilies)
{
    EXPECT_EQ(allGpuModels().size(), 4u);
    EXPECT_EQ(gpuFamilyName(GpuModel::V100), "P3");
    EXPECT_EQ(gpuFamilyName(GpuModel::K80), "P2");
    EXPECT_EQ(gpuFamilyName(GpuModel::T4), "G4");
    EXPECT_EQ(gpuFamilyName(GpuModel::M60), "G3");
    EXPECT_EQ(gpuSpec(GpuModel::V100).cudaCores, 5120);
}

TEST(GpuSpecTest, NameParsingAcceptsModelAndFamily)
{
    GpuModel parsed;
    EXPECT_TRUE(gpuModelFromName("V100", parsed));
    EXPECT_EQ(parsed, GpuModel::V100);
    EXPECT_TRUE(gpuModelFromName("p2", parsed));
    EXPECT_EQ(parsed, GpuModel::K80);
    EXPECT_TRUE(gpuModelFromName("g4", parsed));
    EXPECT_EQ(parsed, GpuModel::T4);
    EXPECT_FALSE(gpuModelFromName("A100", parsed));
}

TEST(OpCostTest, ConvFlopsMatchClosedForm)
{
    const Node conv = bigConv();
    const OpCost cost = opCost(conv);
    // 2 * out_elems * kh * kw * inC.
    const double expected =
        2.0 * (32.0 * 56 * 56 * 64) * 3 * 3 * 64;
    EXPECT_DOUBLE_EQ(cost.flops, expected);
    EXPECT_GT(cost.bytes, 0.0);
}

TEST(OpCostTest, MatMulFlops)
{
    OpAttrs attrs;
    attrs.filterShape = TensorShape::matrix(9216, 4096);
    const Node matmul = makeNode(
        OpType::MatMul,
        {TensorShape::matrix(32, 9216), TensorShape::matrix(9216, 4096)},
        TensorShape::matrix(32, 4096), attrs);
    EXPECT_DOUBLE_EQ(opCost(matmul).flops, 2.0 * 32 * 9216 * 4096);
}

TEST(OpCostTest, ElementwiseIsTrafficDominated)
{
    const TensorShape shape = TensorShape::nhwc(32, 56, 56, 64);
    const Node relu =
        makeNode(OpType::Relu, {shape}, shape);
    const OpCost cost = opCost(relu);
    EXPECT_DOUBLE_EQ(cost.bytes,
                     2.0 * static_cast<double>(shape.numBytes()));
    EXPECT_DOUBLE_EQ(cost.flops,
                     static_cast<double>(shape.numElements()));
}

TEST(OpCostTest, TrivialOpsHaveNoCost)
{
    const TensorShape shape = TensorShape::nhwc(32, 56, 56, 64);
    const Node reshape = makeNode(OpType::Reshape, {shape},
                                  TensorShape::matrix(32, 56 * 56 * 64));
    EXPECT_DOUBLE_EQ(opCost(reshape).flops, 0.0);
    EXPECT_DOUBLE_EQ(opCost(reshape).bytes, 0.0);
}

TEST(TimingModelTest, RelativeSpeedMatchesPaperOrdering)
{
    // P3 fastest, then G4, then G3, then P2 (paper Sec. III-A).
    const Node conv = bigConv();
    const double p3 = GpuTimingModel(GpuModel::V100).meanTimeUs(conv);
    const double g4 = GpuTimingModel(GpuModel::T4).meanTimeUs(conv);
    const double g3 = GpuTimingModel(GpuModel::M60).meanTimeUs(conv);
    const double p2 = GpuTimingModel(GpuModel::K80).meanTimeUs(conv);
    EXPECT_LT(p3, g4);
    EXPECT_LT(g4, g3);
    EXPECT_LT(g3, p2);
}

TEST(TimingModelTest, ConvRatiosNearCalibrationTargets)
{
    const Node conv = bigConv();
    const double p3 = GpuTimingModel(GpuModel::V100).meanTimeUs(conv);
    const double g4 = GpuTimingModel(GpuModel::T4).meanTimeUs(conv);
    const double p2 = GpuTimingModel(GpuModel::K80).meanTimeUs(conv);
    // Conv kernels are compute-bound, so their cross-GPU gaps are
    // narrow (~1.9x G4, ~6.2x P2) — the wide 4x/10x gaps of the
    // paper's Fig. 2 are per-op-type averages dominated by the
    // memory-bound categories. Wobble is +-10%; allow generous bands.
    EXPECT_NEAR(g4 / p3, 1.93, 0.5);
    EXPECT_NEAR(p2 / p3, 6.2, 1.5);
}

TEST(TimingModelTest, PoolingFavorsV100EnoughToWinOnCost)
{
    const Node pool = bigPool();
    const double p3 = GpuTimingModel(GpuModel::V100).meanTimeUs(pool);
    const double g4 = GpuTimingModel(GpuModel::T4).meanTimeUs(pool);
    // P3 wins pooling on cost despite 3.06/0.752 pricing iff the time
    // ratio exceeds ~4.07 (paper Sec. III-B).
    EXPECT_GT(g4 / p3, 4.07);
}

TEST(TimingModelTest, BatchNormGradIsG4sBestCostCase)
{
    OpAttrs attrs;
    attrs.filterShape = TensorShape::vector(64);
    const TensorShape shape = TensorShape::nhwc(32, 56, 56, 64);
    const Node bn_grad =
        makeNode(OpType::FusedBatchNormGradV3, {shape, shape}, shape,
                 attrs);
    const double p3 = GpuTimingModel(GpuModel::V100).meanTimeUs(bn_grad);
    const double g4 = GpuTimingModel(GpuModel::T4).meanTimeUs(bn_grad);
    // Cost ratio G4/P3 = time ratio * 0.752/3.06; the paper reports G4
    // ~29% cheaper on this op -> time ratio ~2.9.
    EXPECT_NEAR(g4 / p3, 2.9, 0.7);
}

TEST(TimingModelTest, FilterGradIsSuperlinear)
{
    // Doubling the spatial input size should more than double the
    // Conv2DBackpropFilter time (quadratic behaviour, Sec. IV-B).
    auto filter_grad_node = [](int hw_dim) {
        OpAttrs attrs;
        attrs.kernelH = attrs.kernelW = 3;
        attrs.strideH = attrs.strideW = 1;
        attrs.filterShape = TensorShape{3, 3, 64, 64};
        return makeNode(
            OpType::Conv2DBackpropFilter,
            {TensorShape::nhwc(32, hw_dim, hw_dim, 64),
             TensorShape::nhwc(32, hw_dim, hw_dim, 64)},
            TensorShape{3, 3, 64, 64}, attrs);
    };
    GpuTimingModel model(GpuModel::V100);
    const double small = model.meanTimeUs(filter_grad_node(28));
    const double large = model.meanTimeUs(filter_grad_node(56));
    // 4x the work; superlinearity should push the ratio well above 4
    // (wobble is deterministic per instance, at most +-10% each way).
    EXPECT_GT(large / small, 4.3);
}

TEST(TimingModelTest, HeavyOpNoiseIsLowAndDeterministic)
{
    const Node conv = bigConv();
    GpuTimingModel model(GpuModel::V100);
    util::Rng rng(7);
    util::RunningStats stats;
    for (int i = 0; i < 3000; ++i)
        stats.add(model.sampleTimeUs(conv, rng));
    // Heavy kernels: normalized stddev well below 0.15 (Fig. 5).
    EXPECT_LT(stats.normalizedStddev(), 0.15);
    EXPECT_NEAR(stats.mean(), model.meanTimeUs(conv),
                0.05 * model.meanTimeUs(conv));

    // Identical instances have identical sigma (deterministic hash).
    EXPECT_DOUBLE_EQ(model.instanceSigma(conv),
                     model.instanceSigma(bigConv()));
}

TEST(TimingModelTest, TrivialOpsAreNoisy)
{
    const TensorShape shape = TensorShape::matrix(32, 1000);
    const Node identity = makeNode(OpType::Identity, {shape}, shape);
    GpuTimingModel model(GpuModel::V100);
    util::Rng rng(7);
    util::RunningStats stats;
    for (int i = 0; i < 3000; ++i)
        stats.add(model.sampleTimeUs(identity, rng));
    // Light/trivial kernels exhibit high variability (paper Sec. III-C).
    EXPECT_GT(stats.normalizedStddev(), 0.2);
}

TEST(TimingModelTest, SigmaDistributionMatchesFig5)
{
    // Across many synthetic heavy instances, ~95% of sigmas < 0.1.
    GpuTimingModel model(GpuModel::K80);
    std::vector<double> sigmas;
    for (int c = 16; c <= 512; c += 8) {
        OpAttrs attrs;
        attrs.kernelH = attrs.kernelW = 3;
        attrs.strideH = attrs.strideW = 1;
        attrs.filterShape = TensorShape{3, 3, c, c};
        const Node conv = makeNode(
            OpType::Conv2D,
            {TensorShape::nhwc(32, 28, 28, c), TensorShape{3, 3, c, c}},
            TensorShape::nhwc(32, 28, 28, c), attrs);
        sigmas.push_back(model.instanceSigma(conv));
    }
    std::size_t below = 0;
    for (double sigma : sigmas)
        below += sigma < 0.1;
    EXPECT_GE(static_cast<double>(below) /
                  static_cast<double>(sigmas.size()),
              0.85);
    EXPECT_LE(*std::max_element(sigmas.begin(), sigmas.end()), 0.115);
}

TEST(CpuModelTest, CpuOpsAreNoisyAndScaleWithHost)
{
    const TensorShape shape = TensorShape::matrix(32, 1000);
    const Node sparse =
        makeNode(OpType::SparseToDense, {shape}, shape);
    CpuTimingModel fast(1.0), slow(1.2);
    EXPECT_GT(slow.meanTimeUs(sparse), fast.meanTimeUs(sparse));

    util::Rng rng(3);
    util::RunningStats stats;
    for (int i = 0; i < 5000; ++i)
        stats.add(fast.sampleTimeUs(sparse, rng));
    EXPECT_NEAR(stats.normalizedStddev(), 0.6, 0.12);
    EXPECT_NEAR(stats.mean(), fast.meanTimeUs(sparse),
                0.05 * fast.meanTimeUs(sparse));
}

TEST(CpuModelTest, DevicePlacementIsEnforced)
{
    const TensorShape shape = TensorShape::matrix(32, 1000);
    const Node relu = makeNode(OpType::Relu, {shape}, shape);
    const Node sparse = makeNode(OpType::SparseToDense, {shape}, shape);
    EXPECT_DEATH(CpuTimingModel(1.0).meanTimeUs(relu), "GPU op");
    EXPECT_DEATH(GpuTimingModel(GpuModel::V100).meanTimeUs(sparse),
                 "CPU op");
}

TEST(InterconnectTest, OverheadIsLinearInParams)
{
    // For fixed (gpu, k), S must be (wobbled) linear in param bytes.
    const double input_bytes = 20e6;
    for (GpuModel gpu : allGpuModels()) {
        for (int k = 1; k <= 4; ++k) {
            const double at_20m =
                commOverheadUs(gpu, k, 20e6 * 4, input_bytes);
            const double at_140m =
                commOverheadUs(gpu, k, 140e6 * 4, input_bytes);
            EXPECT_GT(at_140m, at_20m);
            // Slope bounded: ratio within the wobble-widened linear
            // band (exact linearity would give <= 7x here).
            EXPECT_LT(at_140m / at_20m, 9.0);
        }
    }
}

TEST(InterconnectTest, OverheadGrowsWithGpuCount)
{
    const double params = 25e6 * 4;
    for (GpuModel gpu : allGpuModels()) {
        double previous = 0.0;
        for (int k = 1; k <= 4; ++k) {
            const double overhead =
                commOverheadUs(gpu, k, params, 20e6);
            EXPECT_GT(overhead, previous * 0.9)
                << gpuModelName(gpu) << " k=" << k;
            previous = overhead;
        }
    }
}

TEST(InterconnectTest, SampleIsNearMean)
{
    util::Rng rng(5);
    util::RunningStats stats;
    const double mean =
        commOverheadUs(GpuModel::V100, 4, 100e6, 20e6);
    for (int i = 0; i < 2000; ++i)
        stats.add(sampleCommOverheadUs(GpuModel::V100, 4, 100e6, 20e6,
                                       rng));
    EXPECT_NEAR(stats.mean(), mean, 0.03 * mean);
    EXPECT_LT(stats.normalizedStddev(), 0.1);
}

TEST(InterconnectTest, CounterBasedSampleIsPureAndNearMean)
{
    // The (seed, iteration)-keyed overload used by the batched
    // simulator: same key gives the same draw, different iterations
    // decorrelate, and the noise stays centred on the mean overhead.
    const double mean =
        commOverheadUs(GpuModel::V100, 4, 100e6, 20e6);
    EXPECT_DOUBLE_EQ(
        sampleCommOverheadUs(GpuModel::V100, 4, 100e6, 20e6, 9, 17),
        sampleCommOverheadUs(GpuModel::V100, 4, 100e6, 20e6, 9, 17));
    EXPECT_NE(
        sampleCommOverheadUs(GpuModel::V100, 4, 100e6, 20e6, 9, 17),
        sampleCommOverheadUs(GpuModel::V100, 4, 100e6, 20e6, 9, 18));
    util::RunningStats stats;
    for (std::int64_t iter = 0; iter < 2000; ++iter)
        stats.add(sampleCommOverheadUs(GpuModel::V100, 4, 100e6, 20e6,
                                       5, iter));
    EXPECT_NEAR(stats.mean(), mean, 0.03 * mean);
    EXPECT_LT(stats.normalizedStddev(), 0.1);
}

TEST(InterconnectTest, InvalidGpuCountDies)
{
    EXPECT_DEATH(commOverheadUs(GpuModel::V100, 0, 1e6, 1e6), "num_gpus");
}

} // namespace
} // namespace hw
} // namespace ceer
