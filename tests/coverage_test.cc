/**
 * @file
 * Exhaustive sweeps: every registered op type must pass through the
 * cost and timing models without surprises, and every model (zoo and
 * extras) must simulate on every GPU model. These catch gaps when new
 * op types or models are added.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "hw/device_model.h"
#include "hw/op_cost.h"
#include "models/model_zoo.h"
#include "sim/simulator.h"

namespace ceer {
namespace {

using graph::Device;
using graph::Node;
using graph::OpAttrs;
using graph::OpType;
using graph::TensorShape;

/** A plausible node of the given type for sweep purposes. */
Node
sweepNode(OpType type)
{
    Node node;
    node.id = 0;
    node.name = "sweep";
    node.type = type;
    const TensorShape activation = TensorShape::nhwc(8, 28, 28, 32);
    OpAttrs attrs;
    attrs.kernelH = attrs.kernelW = 3;
    attrs.strideH = attrs.strideW = 1;
    attrs.filterShape = TensorShape{3, 3, 32, 32};
    node.attrs = attrs;
    node.inputShapes = {activation, activation};
    node.outputShape = activation;
    return node;
}

class OpTypeSweep : public ::testing::TestWithParam<OpType>
{
};

TEST_P(OpTypeSweep, CostIsFiniteAndNonNegative)
{
    const Node node = sweepNode(GetParam());
    const hw::OpCost cost = hw::opCost(node);
    EXPECT_GE(cost.flops, 0.0);
    EXPECT_GE(cost.bytes, 0.0);
    EXPECT_TRUE(std::isfinite(cost.flops));
    EXPECT_TRUE(std::isfinite(cost.bytes));
}

TEST_P(OpTypeSweep, TimingModelHandlesEveryPlacement)
{
    const Node node = sweepNode(GetParam());
    if (node.device() == Device::Gpu) {
        for (hw::GpuModel gpu : hw::allGpuModels()) {
            hw::GpuTimingModel model(gpu);
            const double mean = model.meanTimeUs(node);
            EXPECT_GE(mean, hw::gpuSpec(gpu).kernelLaunchUs * 0.99);
            EXPECT_TRUE(std::isfinite(mean));
            // Deterministic: two models agree on the same instance.
            EXPECT_DOUBLE_EQ(mean,
                             hw::GpuTimingModel(gpu).meanTimeUs(node));
            util::Rng rng(3);
            const double sample = model.sampleTimeUs(node, rng);
            EXPECT_GT(sample, 0.0);
        }
    } else {
        hw::CpuTimingModel model(1.0);
        EXPECT_GT(model.meanTimeUs(node), 0.0);
        util::Rng rng(3);
        EXPECT_GT(model.sampleTimeUs(node, rng), 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpTypeSweep,
                         ::testing::ValuesIn(graph::allOpTypes()),
                         [](const auto &info) {
                             return graph::opTypeName(info.param);
                         });

/** All buildable models, zoo plus extras. */
std::vector<std::string>
everyModelName()
{
    std::vector<std::string> names = models::allModelNames();
    names.push_back("transformer_encoder");
    names.push_back("lstm_classifier");
    names.push_back("mobilenet_v1");
    return names;
}

class ModelGpuSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ModelGpuSweep, SimulatesOnEveryGpuModel)
{
    const graph::Graph g = models::buildModel(GetParam(), 8);
    double previous = 0.0;
    for (hw::GpuModel gpu :
         {hw::GpuModel::V100, hw::GpuModel::T4, hw::GpuModel::M60,
          hw::GpuModel::K80}) {
        sim::SimConfig config;
        config.gpu = gpu;
        config.seed = 77;
        sim::TrainingSimulator simulator(g, config);
        const double mean = simulator.run(3).iterationUs.mean();
        EXPECT_TRUE(std::isfinite(mean));
        // The paper's ordering holds for every model we can build:
        // V100 < T4 < M60 < K80 per-iteration.
        EXPECT_GT(mean, previous) << hw::gpuModelName(gpu);
        previous = mean;
    }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelGpuSweep,
                         ::testing::ValuesIn(everyModelName()),
                         [](const auto &info) { return info.param; });

} // namespace
} // namespace ceer
