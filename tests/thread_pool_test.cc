/**
 * @file
 * Tests for util::ThreadPool: task submission, parallelFor coverage,
 * exception propagation, and a contended stress loop that doubles as
 * the ThreadSanitizer workload for tools/check.sh.
 */

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace ceer {
namespace util {
namespace {

TEST(ThreadPoolTest, SubmitReturnsFutureResults)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.workerCount(), 3u);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsOnCaller)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), 0u);
    std::vector<int> hits(10, 0);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i] = 1; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    for (auto &hit : hits)
        hit.store(0);
    pool.parallelFor(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingle)
{
    ThreadPool pool(2);
    int calls = 0;
    pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions)
{
    ThreadPool pool(2);
    auto future = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptions)
{
    ThreadPool pool(3);
    EXPECT_THROW(pool.parallelFor(100,
                                  [](std::size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error(
                                              "task 37 failed");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPoolTest, ZeroWorkerParallelForPropagatesExceptions)
{
    ThreadPool pool(0);
    EXPECT_THROW(pool.parallelFor(10,
                                  [](std::size_t i) {
                                      if (i == 3)
                                          throw std::runtime_error(
                                              "serial task failed");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPoolTest, PoolIsReusableAfterParallelForThrows)
{
    ThreadPool pool(3);
    EXPECT_THROW(pool.parallelFor(
                     50,
                     [](std::size_t i) {
                         if (i % 10 == 5)
                             throw std::runtime_error("partial");
                     }),
                 std::runtime_error);

    // The failed run must not wedge the workers: the same pool runs a
    // full clean pass afterwards.
    std::vector<std::atomic<int>> hits(200);
    for (auto &hit : hits)
        hit.store(0);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, TaskCounterTracksSubmissions)
{
    obs::ScopedEnable on(true);
    obs::counter("threadpool.tasks").reset();
    ThreadPool pool(2);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 5; ++i)
        futures.push_back(pool.submit([i] { return i; }));
    for (auto &future : futures)
        (void)future.get();
    EXPECT_EQ(
        obs::snapshotMetrics().counterValue("threadpool.tasks"), 5u);
}

TEST(ThreadPoolTest, ContendedSharedStateStress)
{
    // TSan workload: many tasks mutating shared state under a mutex
    // plus an atomic counter, across repeated pool lifetimes.
    for (int round = 0; round < 3; ++round) {
        ThreadPool pool(4);
        std::mutex mutex;
        std::set<std::size_t> seen;
        std::atomic<std::size_t> total{0};
        pool.parallelFor(500, [&](std::size_t i) {
            total.fetch_add(i);
            std::lock_guard<std::mutex> lock(mutex);
            seen.insert(i);
        });
        EXPECT_EQ(seen.size(), 500u);
        EXPECT_EQ(total.load(), 500u * 499u / 2);
    }
}

} // namespace
} // namespace util
} // namespace ceer
