/**
 * @file
 * Tests for util::ThreadPool: task submission, parallelFor coverage,
 * exception propagation, and a contended stress loop that doubles as
 * the ThreadSanitizer workload for tools/check.sh.
 */

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace ceer {
namespace util {
namespace {

TEST(ThreadPoolTest, SubmitReturnsFutureResults)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.workerCount(), 3u);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsOnCaller)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), 0u);
    std::vector<int> hits(10, 0);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i] = 1; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    for (auto &hit : hits)
        hit.store(0);
    pool.parallelFor(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingle)
{
    ThreadPool pool(2);
    int calls = 0;
    pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions)
{
    ThreadPool pool(2);
    auto future = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptions)
{
    ThreadPool pool(3);
    EXPECT_THROW(pool.parallelFor(100,
                                  [](std::size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error(
                                              "task 37 failed");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPoolTest, ZeroWorkerParallelForPropagatesExceptions)
{
    ThreadPool pool(0);
    EXPECT_THROW(pool.parallelFor(10,
                                  [](std::size_t i) {
                                      if (i == 3)
                                          throw std::runtime_error(
                                              "serial task failed");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPoolTest, PoolIsReusableAfterParallelForThrows)
{
    ThreadPool pool(3);
    EXPECT_THROW(pool.parallelFor(
                     50,
                     [](std::size_t i) {
                         if (i % 10 == 5)
                             throw std::runtime_error("partial");
                     }),
                 std::runtime_error);

    // The failed run must not wedge the workers: the same pool runs a
    // full clean pass afterwards.
    std::vector<std::atomic<int>> hits(200);
    for (auto &hit : hits)
        hit.store(0);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, TaskCounterTracksSubmissions)
{
    obs::ScopedEnable on(true);
    obs::counter("pool.tasks").reset();
    ThreadPool pool(2);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 5; ++i)
        futures.push_back(pool.submit([i] { return i; }));
    for (auto &future : futures)
        (void)future.get();
    EXPECT_EQ(obs::snapshotMetrics().counterValue("pool.tasks"), 5u);
}

TEST(ThreadPoolTest, FewerItemsThanWorkersCoversEveryIndex)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    for (auto &hit : hits)
        hit.store(0);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, SubmitAcceptsMoveOnlyCallables)
{
    ThreadPool pool(2);
    auto value = std::make_unique<int>(41);
    auto future = pool.submit(
        [v = std::move(value)] { return *v + 1; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, RangeFormCoversEveryIndexOnceWithStaticGrain)
{
    ThreadPool pool(4);
    constexpr std::size_t kN = 10'000;
    std::vector<std::atomic<int>> hits(kN);
    for (auto &hit : hits)
        hit.store(0);
    ParallelOptions options;
    options.costHintUs = 1.0; // static grain (no probe chunk)
    pool.parallelForRange(kN, options,
                          [&](std::size_t lo, std::size_t hi) {
                              ASSERT_LT(lo, hi);
                              ASSERT_LE(hi, kN);
                              for (std::size_t i = lo; i < hi; ++i)
                                  hits[i].fetch_add(1);
                          });
    for (std::size_t i = 0; i < kN; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, RangeFormCoversEveryIndexOnceWithMeasuredGrain)
{
    ThreadPool pool(4);
    constexpr std::size_t kN = 50'000;
    std::vector<std::atomic<int>> hits(kN);
    for (auto &hit : hits)
        hit.store(0);
    ParallelOptions options; // costHintUs == 0: measured first chunk
    options.minGrain = 16;
    options.maxGrain = 4096;
    pool.parallelForRange(kN, options,
                          [&](std::size_t lo, std::size_t hi) {
                              for (std::size_t i = lo; i < hi; ++i)
                                  hits[i].fetch_add(1);
                          });
    for (std::size_t i = 0; i < kN; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, MaxThreadsOneRunsSerially)
{
    ThreadPool pool(4);
    ParallelOptions options;
    options.maxThreads = 1;
    std::vector<int> hits(100, 0); // unsynchronized: serial contract
    pool.parallelForRange(hits.size(), options,
                          [&](std::size_t lo, std::size_t hi) {
                              for (std::size_t i = lo; i < hi; ++i)
                                  hits[i] += 1;
                          });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPoolTest, ExceptionAbandonsRemainingChunks)
{
    // A throw in one chunk must stop other executors from claiming
    // further chunks: with the failure in the very first index, the
    // executed count stays far below n.
    ThreadPool pool(4);
    constexpr std::size_t kN = 1'000'000;
    std::atomic<std::size_t> executed{0};
    ParallelOptions options;
    options.costHintUs = 0.01; // fine grain: many chunks to abandon
    try {
        pool.parallelForRange(kN, options,
                              [&](std::size_t lo, std::size_t hi) {
                                  if (lo == 0)
                                      throw std::runtime_error(
                                          "first chunk failed");
                                  executed.fetch_add(hi - lo);
                              });
        FAIL() << "expected the chunk's exception to propagate";
    } catch (const std::runtime_error &error) {
        EXPECT_STREQ(error.what(), "first chunk failed");
    }
    EXPECT_LT(executed.load(), kN / 2)
        << "remaining chunks were not abandoned";
}

TEST(ThreadPoolTest, RangeFormPropagatesExceptionFromLastChunk)
{
    ThreadPool pool(2);
    ParallelOptions options;
    options.costHintUs = 1000.0;
    EXPECT_THROW(pool.parallelForRange(
                     64, options,
                     [&](std::size_t, std::size_t hi) {
                         if (hi == 64)
                             throw std::runtime_error("tail failed");
                     }),
                 std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock)
{
    // Outer chunks run on workers; each body opens a nested
    // parallelFor on the same pool. The nested caller claims chunks
    // itself, so this terminates even with every worker busy.
    ThreadPool pool(3);
    constexpr std::size_t kOuter = 16;
    constexpr std::size_t kInner = 64;
    std::vector<std::atomic<std::size_t>> inner_sums(kOuter);
    for (auto &sum : inner_sums)
        sum.store(0);
    pool.parallelFor(kOuter, [&](std::size_t o) {
        pool.parallelFor(kInner, [&](std::size_t i) {
            inner_sums[o].fetch_add(i + 1);
        });
    });
    for (std::size_t o = 0; o < kOuter; ++o)
        EXPECT_EQ(inner_sums[o].load(), kInner * (kInner + 1) / 2)
            << "outer " << o;
}

TEST(ThreadPoolTest, SharedPoolHasWorkersAndRuns)
{
    ThreadPool &pool = ThreadPool::shared();
    EXPECT_GE(pool.workerCount(), 1u);
    EXPECT_TRUE(&pool == &ThreadPool::shared());
    std::vector<std::atomic<int>> hits(512);
    for (auto &hit : hits)
        hit.store(0);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, SchedulerMetricsAreObservable)
{
    obs::ScopedEnable on(true);
    {
        ThreadPool pool(4);
        // Many short parallel sections. Steal and park counts are
        // schedule-dependent (zero is legitimate on a single-core
        // host), so the contract tested here is the deterministic
        // part: helper tasks are counted, the grain controller
        // publishes its decision, and the destructor records the
        // per-worker task distribution.
        for (int round = 0; round < 20; ++round) {
            std::atomic<std::size_t> total{0};
            ParallelOptions options;
            options.costHintUs = 0.5;
            pool.parallelForRange(1000, options,
                                  [&](std::size_t lo, std::size_t hi) {
                                      total.fetch_add(hi - lo);
                                  });
            ASSERT_EQ(total.load(), 1000u);
        }
    }
    const auto snapshot = obs::snapshotMetrics();
    EXPECT_GT(snapshot.counterValue("pool.tasks"), 0u);
    EXPECT_GT(snapshot.gaugeValue("pool.grain"), 0.0);
    EXPECT_NE(snapshot.findHistogram("pool.worker_tasks"), nullptr);
}

TEST(ThreadPoolTest, ZeroWorkerSubmitRunsInline)
{
    // With no workers a submitted task must still execute (inline on
    // the caller): queueing it would deadlock future.get() until the
    // destructor's drain.
    ThreadPool pool(0);
    auto future = pool.submit([] { return 42; });
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(future.get(), 42);
    auto failing = pool.submit(
        []() -> int { throw std::runtime_error("inline boom"); });
    EXPECT_THROW(failing.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SubmitWakeupIsNeverLost)
{
    // Regression for a lost-wakeup race in the park protocol: a task
    // enqueued between a worker's final queue scan and its parked_
    // announcement was folded into the worker's epoch snapshot, so it
    // slept on a non-empty queue and the future never resolved. A
    // single worker maximizes park/unpark round trips; every future
    // must resolve promptly.
    ThreadPool pool(1);
    for (int i = 0; i < 3000; ++i) {
        auto future = pool.submit([i] { return i; });
        ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready)
            << "submission " << i << " was lost by the scheduler";
        ASSERT_EQ(future.get(), i);
    }
}

TEST(ThreadPoolTest, ExceptionExhaustsCursorBeforeRethrow)
{
    // Regression for a use-after-free window: helpers that start
    // after the caller rethrew must be gated by the claim cursor (an
    // RMW), not by relaxed visibility of the failure flag. Tight
    // repeated sections keep stale helper tasks in flight while the
    // next iteration reuses the stack frame; TSan (tools/check.sh)
    // flags any touch of a dead frame.
    ThreadPool pool(4);
    for (int round = 0; round < 200; ++round) {
        std::atomic<std::size_t> executed{0};
        ParallelOptions options;
        options.costHintUs = 0.01;
        try {
            pool.parallelForRange(
                10'000, options,
                [&](std::size_t lo, std::size_t hi) {
                    if (lo == 0)
                        throw std::runtime_error("poisoned chunk");
                    executed.fetch_add(hi - lo);
                });
            FAIL() << "expected the exception to propagate";
        } catch (const std::runtime_error &) {
        }
        EXPECT_LE(executed.load(), 10'000u);
    }
}

TEST(ThreadPoolTest, MeasuredGrainHonorsBalanceCap)
{
    obs::ScopedEnable on(true);
    ThreadPool pool(3); // 4 executors with the caller
    constexpr std::size_t kN = 1600;
    // Near-free items: an uncapped measured grain would cover the
    // whole remaining range in one chunk, serializing the sweep after
    // the probe. The published grain must respect the per-executor
    // balance bound n / (executors * 4) even with maxGrain unset.
    std::atomic<std::size_t> total{0};
    pool.parallelForRange(kN, ParallelOptions{},
                          [&](std::size_t lo, std::size_t hi) {
                              total.fetch_add(hi - lo);
                          });
    EXPECT_EQ(total.load(), kN);
    const double grain =
        obs::snapshotMetrics().gaugeValue("pool.grain");
    EXPECT_GT(grain, 0.0);
    EXPECT_LE(grain, static_cast<double>(kN / (4 * 4)));
}

TEST(ThreadPoolTest, ContendedSharedStateStress)
{
    // TSan workload: many tasks mutating shared state under a mutex
    // plus an atomic counter, across repeated pool lifetimes.
    for (int round = 0; round < 3; ++round) {
        ThreadPool pool(4);
        std::mutex mutex;
        std::set<std::size_t> seen;
        std::atomic<std::size_t> total{0};
        pool.parallelFor(500, [&](std::size_t i) {
            total.fetch_add(i);
            std::lock_guard<std::mutex> lock(mutex);
            seen.insert(i);
        });
        EXPECT_EQ(seen.size(), 500u);
        EXPECT_EQ(total.load(), 500u * 499u / 2);
    }
}

} // namespace
} // namespace util
} // namespace ceer
