/**
 * @file
 * End-to-end tests of the Ceer pipeline: classification, op-model
 * fitting, medians, the communication model, prediction accuracy on
 * held-out CNNs, ablations, recommendation and serialization.
 */

#include <cstdint>
#include <cstring>
#include <sstream>

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "cloud/instances.h"
#include "core/predictor.h"
#include "core/recommender.h"
#include "core/trainer.h"
#include "models/model_zoo.h"
#include "profile/profiler.h"
#include "sim/simulator.h"

namespace ceer {
namespace core {
namespace {

using graph::Graph;
using graph::OpType;
using hw::GpuModel;

/** Trained-on-the-paper's-8-CNNs fixture, shared across tests. */
const CeerModel &
trainedModel()
{
    static const CeerModel model = [] {
        profile::CollectOptions options;
        options.iterations = 50;
        const profile::ProfileDataset dataset =
            profile::collectProfiles(models::trainingSetNames(),
                                     options);
        return trainCeer(dataset);
    }();
    return model;
}

TEST(TrainerTest, ClassifiesPaperHeavyOps)
{
    const CeerModel &model = trainedModel();
    // The pillars of the paper's Fig. 2 heavy-op list.
    for (OpType op : {OpType::Conv2D, OpType::Conv2DBackpropFilter,
                      OpType::Conv2DBackpropInput, OpType::MaxPool,
                      OpType::MaxPoolGrad, OpType::AvgPool,
                      OpType::AvgPoolGrad, OpType::Relu,
                      OpType::ReluGrad, OpType::FusedBatchNormV3,
                      OpType::FusedBatchNormGradV3, OpType::AddV2,
                      OpType::AddN, OpType::BiasAdd, OpType::MatMul}) {
        EXPECT_EQ(model.classify(op), OpClass::Heavy)
            << graph::opTypeName(op);
    }
    // Structural/metadata ops stay light; host kernels are CPU.
    EXPECT_EQ(model.classify(OpType::Reshape), OpClass::Light);
    EXPECT_EQ(model.classify(OpType::Shape), OpClass::Light);
    EXPECT_EQ(model.classify(OpType::SparseToDense), OpClass::Cpu);
    EXPECT_EQ(model.classify(OpType::IteratorGetNext), OpClass::Cpu);
}

TEST(TrainerTest, OpModelsFitWellOnAllGpus)
{
    const CeerModel &model = trainedModel();
    for (GpuModel gpu : hw::allGpuModels()) {
        const OpTimeModel *conv = model.opModel(gpu, OpType::Conv2D);
        ASSERT_NE(conv, nullptr) << hw::gpuModelName(gpu);
        EXPECT_TRUE(conv->usable);
        EXPECT_GT(conv->r2, 0.84);
        EXPECT_GT(conv->points, 10u);
    }
    const auto [lo, hi] = model.opModelR2Range();
    // Paper: R^2 in 0.84-0.98 across operations; our synthetic
    // substrate is cleaner, so allow up to 1.0.
    EXPECT_GE(lo, 0.80);
    EXPECT_LE(hi, 1.0);
}

TEST(TrainerTest, FilterGradPrefersQuadratic)
{
    // Sec. IV-B: Conv2DBackpropFilter needs the quadratic fit.
    const CeerModel &model = trainedModel();
    int quadratic_count = 0;
    for (GpuModel gpu : hw::allGpuModels()) {
        const OpTimeModel *entry =
            model.opModel(gpu, OpType::Conv2DBackpropFilter);
        ASSERT_NE(entry, nullptr);
        quadratic_count += entry->quadratic;
    }
    EXPECT_GE(quadratic_count, 2);
}

TEST(TrainerTest, MediansAreSensible)
{
    const CeerModel &model = trainedModel();
    // Light GPU kernels: a few microseconds to tens of microseconds.
    EXPECT_GT(model.lightMedianUs, 1.0);
    EXPECT_LT(model.lightMedianUs, 100.0);
    // CPU kernels are one to two orders of magnitude slower.
    EXPECT_GT(model.cpuMedianUs, model.lightMedianUs * 3.0);
    EXPECT_LT(model.cpuMedianUs, 5000.0);
}

TEST(TrainerTest, CommModelLinearFitsPerGpuAndK)
{
    const CeerModel &model = trainedModel();
    for (GpuModel gpu : hw::allGpuModels()) {
        const auto it = model.comm.fits.find(gpu);
        ASSERT_NE(it, model.comm.fits.end());
        ASSERT_GE(it->second.size(), 4u);
        for (int k = 1; k <= 4; ++k) {
            const auto &fit =
                it->second[static_cast<std::size_t>(k) - 1];
            EXPECT_TRUE(fit.valid) << hw::gpuModelName(gpu) << " k="
                                   << k;
            // Paper Sec. IV-C: comm R^2 between 0.88 and 0.98; allow
            // the cleaner-substrate upside.
            EXPECT_GT(fit.r2, 0.85)
                << hw::gpuModelName(gpu) << " k=" << k;
        }
        // More GPUs -> more overhead for a mid-size CNN.
        const double params = 44.5e6;
        EXPECT_GT(model.comm.overheadUs(gpu, 2, params),
                  model.comm.overheadUs(gpu, 1, params));
        EXPECT_GT(model.comm.overheadUs(gpu, 4, params),
                  model.comm.overheadUs(gpu, 2, params));
    }
}

TEST(TrainerTest, CommModelExtrapolatesBeyondTrainedWidths)
{
    const CeerModel &model = trainedModel();
    const double params = 44.5e6;
    const double k4 =
        model.comm.overheadUs(GpuModel::V100, 4, params);
    const double k8 =
        model.comm.overheadUs(GpuModel::V100, 8, params);
    EXPECT_GT(k8, k4);
}


TEST(TrainerTest, ThresholdControlsClassification)
{
    // Raising the heavy threshold far above any op's mean leaves
    // nothing classified heavy; lowering it to ~0 makes every GPU op
    // heavy.
    profile::CollectOptions options;
    options.iterations = 15;
    options.multiGpuRuns = true;
    options.maxGpus = 2;
    const profile::ProfileDataset dataset =
        profile::collectProfiles({"inception_v1"}, options);

    TrainOptions all_light;
    all_light.heavyThresholdUs = 1e12;
    const CeerModel light_model = trainCeer(dataset, all_light);
    EXPECT_TRUE(light_model.heavyOps.empty());
    EXPECT_TRUE(light_model.opModels.empty());

    TrainOptions all_heavy;
    all_heavy.heavyThresholdUs = 0.0;
    const CeerModel heavy_model = trainCeer(dataset, all_heavy);
    EXPECT_GT(heavy_model.heavyOps.size(), 25u);
    // CPU ops are never classified heavy regardless of threshold.
    EXPECT_EQ(heavy_model.classify(OpType::SparseToDense),
              OpClass::Cpu);
}

TEST(TrainerTest, FewInstancesFallBackToMedian)
{
    // With a huge minPoints every fit is unusable and predictUs falls
    // back to the per-type median of instance means.
    profile::CollectOptions options;
    options.iterations = 15;
    options.maxGpus = 2;
    const profile::ProfileDataset dataset =
        profile::collectProfiles({"vgg_11"}, options);
    TrainOptions no_regression;
    no_regression.minPoints = 100000;
    const CeerModel model = trainCeer(dataset, no_regression);
    const OpTimeModel *conv =
        model.opModel(GpuModel::V100, OpType::Conv2D);
    ASSERT_NE(conv, nullptr);
    EXPECT_FALSE(conv->usable);
    EXPECT_GT(conv->medianUs, 0.0);
    EXPECT_DOUBLE_EQ(conv->predictUs({1e6, 1e6, 0.0, 1e9}),
                     conv->medianUs);
}

TEST(TrainerTest, PredictUsClampsToPositiveFloor)
{
    const CeerModel &model = trainedModel();
    const OpTimeModel *relu =
        model.opModel(GpuModel::V100, OpType::Relu);
    ASSERT_NE(relu, nullptr);
    // Far below the training range the line can dip negative; the
    // prediction floors at 1us (kernels cannot beat launch).
    EXPECT_GE(relu->predictUs({0.0, 0.0, 0.0, 0.0}), 1.0);
}

TEST(TrainerTest, ThresholdGpuCanBeChanged)
{
    // Classifying on V100 (10x faster) must demote some ops that are
    // heavy when classified on the paper's P2.
    profile::CollectOptions options;
    options.iterations = 15;
    options.maxGpus = 2;
    const profile::ProfileDataset dataset = profile::collectProfiles(
        {"inception_v1", "vgg_11"}, options);
    const CeerModel on_p2 = trainCeer(dataset);
    TrainOptions v100_options;
    v100_options.thresholdGpu = GpuModel::V100;
    const CeerModel on_v100 = trainCeer(dataset, v100_options);
    EXPECT_LT(on_v100.heavyOps.size(), on_p2.heavyOps.size());
}

// --- Prediction accuracy on held-out CNNs (paper Sec. V) ---

struct AccuracyCase
{
    const char *model;
    int numGpus;
};

class AccuracyTest : public ::testing::TestWithParam<AccuracyCase>
{
};

TEST_P(AccuracyTest, HeldOutErrorWithinPaperBand)
{
    const auto &test_case = GetParam();
    const CeerPredictor predictor(trainedModel());
    const Graph g = models::buildModel(test_case.model, 32);
    for (GpuModel gpu : hw::allGpuModels()) {
        sim::SimConfig config;
        config.gpu = gpu;
        config.numGpus = test_case.numGpus;
        config.seed = 4242;
        sim::TrainingSimulator simulator(g, config);
        const double observed = simulator.run(40).iterationUs.mean();
        const double predicted = predictor.predictIterationUs(
            g, gpu, test_case.numGpus);
        // Paper: ~5% average error; we allow 12% per point.
        EXPECT_NEAR(predicted / observed, 1.0, 0.12)
            << test_case.model << " on " << hw::gpuModelName(gpu);
    }
}

INSTANTIATE_TEST_SUITE_P(
    TestSet, AccuracyTest,
    ::testing::Values(AccuracyCase{"inception_v3", 4},
                      AccuracyCase{"alexnet", 4},
                      AccuracyCase{"resnet_101", 4},
                      AccuracyCase{"vgg_19", 4},
                      AccuracyCase{"inception_v3", 1},
                      AccuracyCase{"resnet_101", 2}),
    [](const auto &info) {
        return std::string(info.param.model) + "_k" +
               std::to_string(info.param.numGpus);
    });

TEST(PredictorTest, RankingAcrossGpusPreserved)
{
    const CeerPredictor predictor(trainedModel());
    const Graph g = models::buildModel("inception_v3", 32);
    const double p3 =
        predictor.predictIterationUs(g, GpuModel::V100, 4);
    const double g4 = predictor.predictIterationUs(g, GpuModel::T4, 4);
    const double g3 = predictor.predictIterationUs(g, GpuModel::M60, 4);
    const double p2 = predictor.predictIterationUs(g, GpuModel::K80, 4);
    EXPECT_LT(p3, g4);
    EXPECT_LT(g4, g3);
    EXPECT_LT(g3, p2);
}

TEST(PredictorTest, AblationsDegradeAccuracy)
{
    const CeerPredictor predictor(trainedModel());
    const Graph g = models::buildModel("alexnet", 32);
    sim::SimConfig config;
    config.gpu = GpuModel::V100;
    config.seed = 11;
    sim::TrainingSimulator simulator(g, config);
    const double observed = simulator.run(40).iterationUs.mean();

    const double full =
        predictor.predictIterationUs(g, GpuModel::V100, 1);
    const double no_comm = predictor.predictIterationUs(
        g, GpuModel::V100, 1, baselines::noCommOptions());
    const double heavy_only = predictor.predictIterationUs(
        g, GpuModel::V100, 1, baselines::heavyOnlyOptions());

    const double full_error = std::abs(full / observed - 1.0);
    const double no_comm_error = std::abs(no_comm / observed - 1.0);
    // AlexNet's k=1 comm overhead is large (Sec. IV-A: ~30%); ignoring
    // it must hurt substantially.
    EXPECT_GT(no_comm_error, full_error + 0.05);
    EXPECT_LT(no_comm, full);
    EXPECT_LT(heavy_only, full);
}

TEST(PredictorTest, TrainingPredictionArithmetic)
{
    const CeerPredictor predictor(trainedModel());
    const Graph g = models::buildModel("inception_v3", 32);
    const TrainingPrediction prediction =
        predictor.predictTraining(g, GpuModel::V100, 4, 1'200'000, 32);
    EXPECT_EQ(prediction.iterations, 1'200'000 / (4 * 32));
    EXPECT_NEAR(prediction.hours,
                prediction.iterationUs * prediction.iterations / 3.6e9,
                1e-9);
    EXPECT_NEAR(prediction.costUsd(3.06), prediction.hours * 3.06,
                1e-9);
}

TEST(PredictorTest, UnseenHeavyOpFallsBackToMedian)
{
    // Craft a graph with a GPU op type absent from training profiles
    // at heavy classification: use a synthetic op model lookup miss by
    // querying a GPU/op combination that never appeared. LRNGrad only
    // appears in LRN-bearing CNNs; it *is* in the training set via
    // inception_v1, so instead check the documented fallback directly.
    CeerModel model = trainedModel();
    model.opModels.erase({GpuModel::V100, OpType::Lrn});
    model.heavyOps.insert(OpType::Lrn);
    const CeerPredictor predictor(std::move(model));

    graph::Node node;
    node.type = OpType::Lrn;
    node.inputShapes = {graph::TensorShape::nhwc(32, 56, 56, 64)};
    node.outputShape = graph::TensorShape::nhwc(32, 56, 56, 64);
    EXPECT_DOUBLE_EQ(predictor.predictOpUs(node, GpuModel::V100),
                     predictor.model().lightMedianUs);
}

TEST(PredictorTest, BreakdownSumsToThePrediction)
{
    const CeerPredictor predictor(trainedModel());
    const Graph g = models::buildModel("resnet_101", 32);
    for (GpuModel gpu : hw::allGpuModels()) {
        for (int k : {1, 4}) {
            const PredictionBreakdown breakdown =
                predictor.breakdown(g, gpu, k);
            EXPECT_NEAR(breakdown.totalUs(),
                        predictor.predictIterationUs(g, gpu, k),
                        1e-6 * breakdown.totalUs());
            EXPECT_GT(breakdown.heavyUs, breakdown.lightUs);
            EXPECT_GT(breakdown.commUs, 0.0);
            // Per-type attribution covers the heavy sum and is sorted.
            double by_type_sum = 0.0;
            double previous = 1e300;
            for (const auto &[type, value] : breakdown.heavyByType) {
                by_type_sum += value;
                EXPECT_LE(value, previous);
                previous = value;
            }
            EXPECT_NEAR(by_type_sum, breakdown.heavyUs,
                        1e-6 * breakdown.heavyUs);
        }
    }
}

TEST(PredictorTest, BreakdownTopOpIsConvForResNet)
{
    const CeerPredictor predictor(trainedModel());
    const Graph g = models::buildModel("resnet_101", 32);
    const PredictionBreakdown breakdown =
        predictor.breakdown(g, GpuModel::V100, 1);
    ASSERT_FALSE(breakdown.heavyByType.empty());
    const OpType top = breakdown.heavyByType.front().first;
    EXPECT_TRUE(top == OpType::Conv2D ||
                top == OpType::Conv2DBackpropFilter ||
                top == OpType::Conv2DBackpropInput)
        << graph::opTypeName(top);
}

TEST(PredictorTest, CompiledPlanMatchesNodeWalkAcrossZoo)
{
    // The acceptance bar of the compiled-plan path: for every zoo
    // model, GPU and data-parallel width, the plan evaluator must
    // reproduce the scalar node walk bit for bit.
    const auto bits = [](double x) {
        std::uint64_t u;
        std::memcpy(&u, &x, sizeof u);
        return u;
    };
    const CeerPredictor predictor(trainedModel());
    for (const auto &name : models::allModelNames()) {
        const Graph g = models::buildModel(name, 32);
        const PredictPlan plan = predictor.compile(g);
        for (GpuModel gpu : hw::allGpuModels()) {
            for (int k : {1, 2, 4, 8}) {
                EXPECT_EQ(bits(predictor.predictIterationUs(g, gpu, k)),
                          bits(predictor.predictIterationUs(plan, gpu,
                                                            k)))
                    << name << " " << hw::gpuModelName(gpu)
                    << " k=" << k;
            }
        }
    }
}

TEST(RecommenderTest, CustomObjectiveBlendsTimeAndCost)
{
    const CeerPredictor predictor(trainedModel());
    const Graph g = models::buildModel("inception_v3", 32);
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();
    WorkloadSpec workload{&g, 1'200'000, 32};

    // Obj(T, C) = T * C: the cost-delay product must pick something at
    // least as good as both single-metric winners under its own score.
    const ObjectiveFn product = [](double hours, double cost) {
        return hours * cost;
    };
    const Recommendation blended = recommend(
        predictor, workload, catalog.instances(), product);
    ASSERT_GE(blended.bestIndex, 0);
    const auto score = [&](const CandidateEvaluation &evaluation) {
        return evaluation.prediction.hours * evaluation.costUsd;
    };
    for (const auto &evaluation : blended.evaluations)
        EXPECT_LE(score(blended.best()), score(evaluation) + 1e-9);

    // Degenerate blends reduce to the built-in objectives.
    const Recommendation time_like = recommend(
        predictor, workload, catalog.instances(),
        objectiveFunction(Objective::MinTrainingTime));
    const Recommendation builtin_time =
        recommend(predictor, workload, catalog.instances(),
                  Objective::MinTrainingTime);
    EXPECT_EQ(time_like.best().instance.name,
              builtin_time.best().instance.name);
}

TEST(RecommenderTest, EmptyObjectiveFunctionPanics)
{
    const CeerPredictor predictor(trainedModel());
    const Graph g = models::buildModel("alexnet", 32);
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();
    WorkloadSpec workload{&g, 1000, 32};
    EXPECT_DEATH(recommend(predictor, workload, catalog.instances(),
                           ObjectiveFn()),
                 "empty objective");
}

TEST(RecommenderTest, MinCostPicksG4AndMinTimePicksP3)
{
    // Paper Sec. V: for Inception-v3 under AWS prices the cheapest
    // feasible choice is the 1-GPU G4 instance (Fig. 11), while the
    // fastest is the 4-GPU P3 instance (Fig. 8).
    const CeerPredictor predictor(trainedModel());
    const Graph g = models::buildModel("inception_v3", 32);
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();
    WorkloadSpec workload{&g, 1'200'000, 32};

    const Recommendation cheapest =
        recommend(CeerPredictor(trainedModel()), workload,
                  catalog.instances(), Objective::MinCost);
    ASSERT_GE(cheapest.bestIndex, 0);
    EXPECT_EQ(cheapest.best().instance.gpu, GpuModel::T4);
    EXPECT_EQ(cheapest.best().instance.numGpus, 1);

    const Recommendation fastest =
        recommend(predictor, workload, catalog.instances(),
                  Objective::MinTrainingTime);
    EXPECT_EQ(fastest.best().instance.gpu, GpuModel::V100);
    EXPECT_EQ(fastest.best().instance.numGpus, 4);
}

TEST(RecommenderTest, MarketPricesFlipWinnerToP2)
{
    // Paper Fig. 12: with market prices the 1-GPU P2 wins on cost.
    const CeerPredictor predictor(trainedModel());
    const Graph g = models::buildModel("inception_v3", 32);
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::marketPriced();
    WorkloadSpec workload{&g, 1'200'000, 32};
    const Recommendation result = recommend(
        predictor, workload, catalog.instances(), Objective::MinCost);
    ASSERT_GE(result.bestIndex, 0);
    EXPECT_EQ(result.best().instance.gpu, GpuModel::K80);
    EXPECT_EQ(result.best().instance.numGpus, 1);
}

TEST(RecommenderTest, TotalBudgetMarksInfeasible)
{
    const CeerPredictor predictor(trainedModel());
    const Graph g = models::buildModel("resnet_101", 32);
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();
    WorkloadSpec workload{&g, 1'200'000, 32};
    Constraints constraints;
    constraints.totalBudgetUsd = 10.0;
    const Recommendation result =
        recommend(predictor, workload, catalog.instances(),
                  Objective::MinTrainingTime, constraints);
    bool some_infeasible = false, some_feasible = false;
    for (const auto &evaluation : result.evaluations) {
        some_infeasible |= !evaluation.feasible();
        some_feasible |= evaluation.feasible();
    }
    EXPECT_TRUE(some_infeasible);
    // Under $10, P2 should be entirely infeasible (paper Fig. 10).
    for (const auto &evaluation : result.evaluations) {
        if (evaluation.instance.gpu == GpuModel::K80) {
            EXPECT_FALSE(evaluation.feasible())
                << evaluation.instance.name;
        }
    }
    if (some_feasible) {
        EXPECT_GE(result.bestIndex, 0);
    }
}

TEST(RecommenderTest, NoFeasibleCandidateYieldsNoBest)
{
    const CeerPredictor predictor(trainedModel());
    const Graph g = models::buildModel("vgg_19", 32);
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();
    WorkloadSpec workload{&g, 1'200'000, 32};
    Constraints constraints;
    constraints.totalBudgetUsd = 0.01;
    const Recommendation result =
        recommend(predictor, workload, catalog.instances(),
                  Objective::MinCost, constraints);
    EXPECT_EQ(result.bestIndex, -1);
    EXPECT_DEATH(result.best(), "no feasible");
}

TEST(SerializationTest, SaveLoadRoundTripPredictsIdentically)
{
    const CeerModel &model = trainedModel();
    std::stringstream buffer;
    model.save(buffer);
    const CeerModel restored = CeerModel::load(buffer);

    EXPECT_EQ(restored.heavyOps, model.heavyOps);
    EXPECT_DOUBLE_EQ(restored.lightMedianUs, model.lightMedianUs);
    EXPECT_DOUBLE_EQ(restored.cpuMedianUs, model.cpuMedianUs);

    const CeerPredictor original(model);
    const CeerPredictor loaded(restored);
    const Graph g = models::buildModel("resnet_101", 32);
    for (GpuModel gpu : hw::allGpuModels()) {
        for (int k = 1; k <= 4; ++k) {
            EXPECT_NEAR(loaded.predictIterationUs(g, gpu, k),
                        original.predictIterationUs(g, gpu, k), 1e-3)
                << hw::gpuModelName(gpu) << " k=" << k;
        }
    }
}

TEST(SerializationTest, ReloadedModelPredictsBitIdenticallyAcrossZoo)
{
    // save() writes every coefficient at %.17g, which round-trips a
    // double exactly, so a reloaded model is not merely close: every
    // prediction it makes must be bit-identical to the original's, for
    // every CNN in the zoo, every GPU, and every cluster size.
    const CeerModel &model = trainedModel();
    std::stringstream buffer;
    model.save(buffer);
    const CeerModel restored = CeerModel::load(buffer);

    // A second save of the reloaded model must reproduce the file
    // byte for byte (serialization is a fixed point).
    std::stringstream again;
    restored.save(again);
    EXPECT_EQ(again.str(), buffer.str());

    const CeerPredictor original(model);
    const CeerPredictor loaded(restored);
    for (const auto &name : models::allModelNames()) {
        const Graph g = models::buildModel(name, 32);
        for (GpuModel gpu : hw::allGpuModels()) {
            for (int k = 1; k <= 4; ++k) {
                EXPECT_EQ(loaded.predictIterationUs(g, gpu, k),
                          original.predictIterationUs(g, gpu, k))
                    << name << " " << hw::gpuModelName(gpu)
                    << " k=" << k;
            }
        }
    }
}

TEST(SerializationTest, DatasetCsvRoundTripTrainsTheSameModel)
{
    // Regression for the profile cache: training from a reloaded
    // profile CSV must reproduce the freshly-trained model (the
    // two-point moment reconstruction in loadCsv is the only lossy
    // step, and it must stay negligible).
    profile::CollectOptions options;
    options.iterations = 30;
    options.maxGpus = 2;
    const profile::ProfileDataset dataset = profile::collectProfiles(
        {"alexnet", "vgg_11", "inception_v1"}, options);
    const CeerModel fresh = trainCeer(dataset);

    std::stringstream buffer;
    dataset.saveCsv(buffer);
    const profile::ProfileDataset reloaded =
        profile::ProfileDataset::loadCsv(buffer);
    const CeerModel restored = trainCeer(reloaded);

    EXPECT_EQ(restored.heavyOps, fresh.heavyOps);
    EXPECT_NEAR(restored.lightMedianUs, fresh.lightMedianUs,
                1e-4 * fresh.lightMedianUs + 1e-9);
    EXPECT_NEAR(restored.cpuMedianUs, fresh.cpuMedianUs,
                1e-4 * fresh.cpuMedianUs + 1e-9);

    ASSERT_EQ(restored.opModels.size(), fresh.opModels.size());
    for (const auto &[key, fresh_op] : fresh.opModels) {
        const auto it = restored.opModels.find(key);
        ASSERT_NE(it, restored.opModels.end())
            << hw::gpuModelName(key.first) << " "
            << graph::opTypeName(key.second);
        const OpTimeModel &restored_op = it->second;
        EXPECT_EQ(restored_op.usable, fresh_op.usable);
        EXPECT_EQ(restored_op.quadratic, fresh_op.quadratic);
        EXPECT_EQ(restored_op.points, fresh_op.points);
        EXPECT_NEAR(restored_op.medianUs, fresh_op.medianUs,
                    1e-6 * fresh_op.medianUs + 1e-9);
        if (fresh_op.usable)
            EXPECT_NEAR(restored_op.r2, fresh_op.r2, 1e-3)
                << hw::gpuModelName(key.first) << " "
                << graph::opTypeName(key.second);
    }

    // The comm fits come from iter rows, which round-trip directly.
    for (const auto &[gpu, fits] : fresh.comm.fits) {
        const auto it = restored.comm.fits.find(gpu);
        ASSERT_NE(it, restored.comm.fits.end());
        ASSERT_EQ(it->second.size(), fits.size());
        for (std::size_t k = 0; k < fits.size(); ++k) {
            EXPECT_EQ(it->second[k].valid, fits[k].valid);
            if (fits[k].valid)
                EXPECT_NEAR(it->second[k].r2, fits[k].r2, 1e-4);
        }
    }
}

} // namespace
} // namespace core
} // namespace ceer
