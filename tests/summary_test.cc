/**
 * @file
 * Tests for the layer-level model summary and the optimizer variants
 * of the training-graph generator.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "graph/autodiff.h"
#include "graph/builder.h"
#include "graph/summary.h"
#include "hw/memory.h"
#include "hw/op_cost.h"
#include "models/model_zoo.h"

namespace ceer {
namespace graph {
namespace {

TEST(SummaryTest, LayersFollowConstructionOrder)
{
    const Graph g = models::buildAlexNet(32);
    const ModelSummary summary = summarize(g);
    ASSERT_GT(summary.layers.size(), 10u);
    // AlexNet layer order: data pipeline, then conv1..fc8, then loss.
    std::vector<std::string> names;
    for (const auto &layer : summary.layers)
        names.push_back(layer.name);
    const auto position = [&](const std::string &name) {
        return std::find(names.begin(), names.end(), name) -
               names.begin();
    };
    EXPECT_LT(position("conv1"), position("conv2"));
    EXPECT_LT(position("conv5"), position("fc6"));
    EXPECT_LT(position("fc6"), position("fc8"));
    EXPECT_NE(position("loss"),
              static_cast<std::ptrdiff_t>(names.size()));
}

TEST(SummaryTest, ParamAndOpTotalsMatchTheGraph)
{
    const Graph g = models::buildVgg(16, 32);
    const ModelSummary summary = summarize(g);
    EXPECT_EQ(summary.totalParams, g.totalParameters());
    EXPECT_EQ(summary.totalOps, g.size());
    std::size_t forward = 0, backward = 0;
    std::int64_t params = 0;
    for (const auto &layer : summary.layers) {
        forward += layer.forwardOps;
        backward += layer.backwardOps;
        params += layer.params;
    }
    EXPECT_EQ(forward + backward, g.size());
    EXPECT_EQ(params, g.totalParameters());
    EXPECT_GT(backward, forward); // backward pass dominates op count.
}

TEST(SummaryTest, GradientOpsAttributeToTheirForwardLayer)
{
    const Graph g = models::buildAlexNet(8);
    const ModelSummary summary = summarize(g);
    for (const auto &layer : summary.layers) {
        if (layer.name == "conv2") {
            // Conv + BiasAdd + Relu forward; grads + updates backward.
            EXPECT_EQ(layer.forwardOps, 3u);
            EXPECT_GE(layer.backwardOps, 5u);
            return;
        }
    }
    FAIL() << "conv2 layer missing from the summary";
}

TEST(SummaryTest, FlopsCallbackFillsGflops)
{
    const Graph g = models::buildAlexNet(32);
    const ModelSummary without = summarize(g);
    EXPECT_DOUBLE_EQ(without.totalGflops, 0.0);

    const ModelSummary with = summarize(
        g, 1, [](const Node &node) { return hw::opCost(node).flops; });
    EXPECT_GT(with.totalGflops, 50.0); // AlexNet iter is ~200 GFLOPs.
    double layer_sum = 0.0;
    for (const auto &layer : with.layers)
        layer_sum += layer.gflops;
    EXPECT_NEAR(layer_sum, with.totalGflops, 1e-9);
}

TEST(SummaryTest, DepthTwoSplitsHierarchicalLayers)
{
    const Graph g = models::buildInceptionV3(8);
    const ModelSummary coarse = summarize(g, 1);
    const ModelSummary fine = summarize(g, 2);
    EXPECT_GT(fine.layers.size(), coarse.layers.size());
    EXPECT_EQ(fine.totalParams, coarse.totalParams);
}

TEST(SummaryTest, PrintRendersHeaderAndRows)
{
    const Graph g = models::buildAlexNet(8);
    std::ostringstream out;
    summarize(g).print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("model: alexnet"), std::string::npos);
    EXPECT_NE(text.find("conv1"), std::string::npos);
    EXPECT_NE(text.find("| layer"), std::string::npos);
}

// --- Optimizer variants ---

Graph
tinyNet(Optimizer optimizer)
{
    GraphBuilder b("tiny", 4);
    NodeId x = b.imageInput(16, 16, 3);
    ConvOptions options;
    options.batchNorm = false;
    options.bias = true;
    x = b.conv2d(x, 8, 3, 3, options, "conv1");
    x = b.fullyConnected(x, 10, false, "logits");
    const NodeId loss = b.softmaxLoss(x);
    TrainingOptions training;
    training.optimizer = optimizer;
    addTrainingOps(b.graph(), loss, training);
    return b.finish();
}

TEST(OptimizerTest, SlotCounts)
{
    EXPECT_EQ(optimizerSlots(Optimizer::Sgd), 0);
    EXPECT_EQ(optimizerSlots(Optimizer::Momentum), 1);
    EXPECT_EQ(optimizerSlots(Optimizer::Adam), 2);
}

TEST(OptimizerTest, UpdateOpTypeFollowsTheOptimizer)
{
    const Graph sgd = tinyNet(Optimizer::Sgd);
    const Graph momentum = tinyNet(Optimizer::Momentum);
    const Graph adam = tinyNet(Optimizer::Adam);

    auto count = [](const Graph &g, OpType type) {
        int n = 0;
        for (const auto &node : g.nodes())
            n += node.type == type;
        return n;
    };
    // conv filter + conv bias + fc weight + fc bias = 4 updates.
    EXPECT_EQ(count(sgd, OpType::ApplyGradientDescent), 4);
    EXPECT_EQ(count(sgd, OpType::ApplyMomentum), 0);
    EXPECT_EQ(count(momentum, OpType::ApplyMomentum), 4);
    EXPECT_EQ(count(adam, OpType::ApplyAdam), 4);
    EXPECT_EQ(count(adam, OpType::ApplyGradientDescent), 0);
    // Same total node count: only the update op type changes.
    EXPECT_EQ(sgd.size(), adam.size());
}

TEST(OptimizerTest, AdamSlotsRaiseTheMemoryEstimate)
{
    const hw::MemoryEstimate sgd =
        hw::estimateTrainingMemory(tinyNet(Optimizer::Sgd));
    const hw::MemoryEstimate momentum =
        hw::estimateTrainingMemory(tinyNet(Optimizer::Momentum));
    const hw::MemoryEstimate adam =
        hw::estimateTrainingMemory(tinyNet(Optimizer::Adam));
    EXPECT_DOUBLE_EQ(sgd.optimizerBytes, 0.0);
    EXPECT_DOUBLE_EQ(momentum.optimizerBytes, momentum.paramBytes);
    EXPECT_DOUBLE_EQ(adam.optimizerBytes, 2.0 * adam.paramBytes);
    EXPECT_GT(adam.totalBytes(), sgd.totalBytes());
}

TEST(OptimizerTest, ZooGraphsStillBuildWithAdam)
{
    // The zoo builders use the default SGD; verify an Adam variant of
    // a hand-built net validates and the update ops are terminal.
    const Graph g = tinyNet(Optimizer::Adam);
    std::string error;
    EXPECT_TRUE(g.validate(&error)) << error;
    const auto &consumers = g.consumers();
    for (const auto &node : g.nodes()) {
        if (node.type == OpType::ApplyAdam) {
            EXPECT_TRUE(
                consumers[static_cast<std::size_t>(node.id)].empty());
            EXPECT_TRUE(node.isGradient);
        }
    }
}

} // namespace
} // namespace graph
} // namespace ceer
