/**
 * @file
 * Figure 4: ReLU compute time vs input data size, with Ceer's per-GPU
 * regression fits (the solid lines in the paper's figure).
 *
 * Prints the scatter series (one point per distinct ReLU instance in
 * the training CNNs) and the fitted line evaluated at the same sizes.
 * Checks that the fits are strongly linear (the paper reports R^2 of
 * 0.84-0.98 across heavy-op regressions).
 */

#include "bench/common.h"

#include <algorithm>

#include "core/trainer.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;
    using graph::OpType;
    using hw::GpuModel;

    const bench::BenchConfig config = bench::parseBenchFlags(argc, argv);
    util::printBanner(std::cout,
                      "Figure 4: ReLU compute time vs input size, with "
                      "regression fits");
    const profile::ProfileDataset dataset =
        bench::collectTrainingProfiles(config, /*multiGpu=*/false);
    const core::CeerModel model = core::trainCeer(dataset);

    bench::CheckSummary summary;
    for (GpuModel gpu : hw::allGpuModels()) {
        const auto instances = dataset.opsFor(gpu, OpType::Relu);
        const core::OpTimeModel *fit =
            model.opModel(gpu, OpType::Relu);
        if (!fit || !fit->usable) {
            std::cout << "no usable ReLU fit for "
                      << hw::gpuModelName(gpu) << "\n";
            continue;
        }

        // Deduplicate by input size and sort for a clean series.
        std::map<double, std::pair<double, double>> series;
        for (const auto *instance : instances) {
            series[instance->inputBytes()] = {
                instance->timeUs.mean(),
                fit->predictUs(instance->features)};
        }
        std::cout << "\n" << hw::gpuModelName(gpu) << " ("
                  << hw::gpuFamilyName(gpu) << "), "
                  << (fit->quadratic ? "quadratic" : "linear")
                  << " fit, R^2 = " << util::format("%.3f", fit->r2)
                  << ":\n";
        util::TablePrinter table(
            {"input size", "measured (us)", "fitted (us)"});
        for (const auto &[bytes, pair] : series) {
            table.addRow({util::humanBytes(bytes),
                          util::format("%.1f", pair.first),
                          util::format("%.1f", pair.second)});
        }
        table.print(std::cout);

        summary.check("ReLU fit R^2 on " + hw::gpuModelName(gpu) +
                          " (paper band 0.84-0.98+)",
                      fit->r2, 0.84, 1.0);
        // Monotonicity: bigger inputs take longer under the fit.
        const double small = fit->predictUs({1e6, 1e6, 0.0, 250e3});
        const double large = fit->predictUs({1e8, 1e8, 0.0, 25e6});
        summary.check("fit monotone in size on " +
                          hw::gpuModelName(gpu),
                      large > small ? 1.0 : 0.0, 1.0, 1.0);
    }
    return summary.finish();
}
