/**
 * @file
 * Figure 8: validation of Ceer on the 4 held-out test CNNs — observed
 * vs predicted training time and cost when training ImageNet (1.2M
 * samples, batch 32/GPU) on the 4-GPU instance of every family.
 *
 * Paper claims checked: ~5.4% average training-time prediction error
 * (cost error identical by construction); predicted time ranking
 * matches the observed ranking for every CNN; averaged across CNNs,
 * P3 cuts training time by ~72.4% / 62.9% / 48.0% vs P2 / G3 / G4;
 * the lowest cost typically comes from G4 at ~2.28x P3's time.
 */

#include "bench/common.h"

#include <algorithm>
#include <cmath>

#include "cloud/instances.h"
#include "models/model_zoo.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;
    using hw::GpuModel;

    const bench::BenchConfig config = bench::parseBenchFlags(argc, argv);
    util::printBanner(std::cout,
                      "Figure 8: observed vs predicted training time "
                      "and cost (4-GPU instances, ImageNet)");
    const bench::TrainedCeer trained =
        bench::trainOnPaperTrainingSet(config);
    const core::CeerPredictor predictor(trained.model);
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();

    util::TablePrinter table({"CNN", "GPU", "observed", "predicted",
                              "error", "obs cost", "pred cost"});
    double total_error = 0.0;
    int points = 0;
    int ranking_matches = 0;
    double p3_saving_p2 = 0.0, p3_saving_g3 = 0.0, p3_saving_g4 = 0.0;
    double g4_over_p3_time = 0.0;
    int g4_cheapest = 0;
    std::uint64_t salt = 0;
    for (const std::string &name : models::testSetNames()) {
        const graph::Graph g = models::buildModel(name, config.batch);
        const std::int64_t iterations =
            bench::kImageNetSamples / (4 * config.batch);
        std::map<GpuModel, double> observed_hours, predicted_hours,
            observed_cost;
        for (GpuModel gpu : hw::allGpuModels()) {
            const double obs_iter_us = bench::observedIterationUs(
                g, gpu, 4, config, ++salt);
            const double hourly = catalog.find(gpu, 4).hourlyUsd;
            observed_hours[gpu] =
                obs_iter_us * static_cast<double>(iterations) / 3.6e9;
            const core::TrainingPrediction prediction =
                predictor.predictTraining(g, gpu, 4,
                                          bench::kImageNetSamples,
                                          config.batch);
            predicted_hours[gpu] = prediction.hours;
            observed_cost[gpu] = observed_hours[gpu] * hourly;
            const double error =
                predicted_hours[gpu] / observed_hours[gpu] - 1.0;
            total_error += std::abs(error);
            ++points;
            table.addRow(
                {name, hw::gpuModelName(gpu),
                 util::format("%.2fh", observed_hours[gpu]),
                 util::format("%.2fh", predicted_hours[gpu]),
                 util::format("%+.1f%%", 100.0 * error),
                 util::format("$%.2f", observed_cost[gpu]),
                 util::format("$%.2f",
                              predicted_hours[gpu] * hourly)});
        }
        table.addSeparator();

        // Ranking agreement (predicted vs observed order of GPUs).
        auto order = [](const std::map<GpuModel, double> &values) {
            std::vector<GpuModel> gpus = hw::allGpuModels();
            std::sort(gpus.begin(), gpus.end(),
                      [&](GpuModel a, GpuModel b) {
                          return values.at(a) < values.at(b);
                      });
            return gpus;
        };
        ranking_matches +=
            order(observed_hours) == order(predicted_hours);

        p3_saving_p2 += 1.0 - observed_hours[GpuModel::V100] /
                                  observed_hours[GpuModel::K80];
        p3_saving_g3 += 1.0 - observed_hours[GpuModel::V100] /
                                  observed_hours[GpuModel::M60];
        p3_saving_g4 += 1.0 - observed_hours[GpuModel::V100] /
                                  observed_hours[GpuModel::T4];
        g4_over_p3_time += observed_hours[GpuModel::T4] /
                           observed_hours[GpuModel::V100];
        GpuModel cheapest = GpuModel::V100;
        for (GpuModel gpu : hw::allGpuModels())
            if (observed_cost[gpu] < observed_cost[cheapest])
                cheapest = gpu;
        g4_cheapest += cheapest == GpuModel::T4;
    }
    table.print(std::cout);

    bench::CheckSummary summary;
    summary.check("mean |training-time prediction error| "
                  "(paper: 5.4%)",
                  total_error / points, 0.0, 0.10);
    summary.check("CNNs with predicted ranking == observed ranking "
                  "(paper: 4/4)",
                  ranking_matches, 4, 4);
    summary.check("mean P3 time reduction vs P2 (paper 72.4%)",
                  p3_saving_p2 / 4.0, 0.60, 0.82);
    summary.check("mean P3 time reduction vs G3 (paper 62.9%)",
                  p3_saving_g3 / 4.0, 0.50, 0.74);
    summary.check("mean P3 time reduction vs G4 (paper 48.0%)",
                  p3_saving_g4 / 4.0, 0.32, 0.58);
    summary.check("CNNs where G4 has the lowest cost "
                  "(paper: typical)",
                  g4_cheapest, 3, 4);
    summary.check("mean G4/P3 time ratio (paper: 2.28x)",
                  g4_over_p3_time / 4.0, 1.4, 2.7);
    return summary.finish();
}
