/**
 * @file
 * Figure 11: budget-minimization scenario — train Inception-v3 on
 * ImageNet at the lowest total rental cost, with no performance
 * target, under AWS On-Demand prices.
 *
 * Paper claims checked: the 1-GPU G4 instance has the lowest cost and
 * Ceer picks it; cost prediction error is ~2.1%; picking the cheapest
 * hourly instance (1-GPU G3) or the most powerful instance (4-GPU P3)
 * costs ~1.6x and ~1.8x more than Ceer's choice.
 */

#include "bench/common.h"

#include <cmath>

#include "baselines/baselines.h"
#include "cloud/instances.h"
#include "core/recommender.h"
#include "models/model_zoo.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;
    using hw::GpuModel;

    const bench::BenchConfig config = bench::parseBenchFlags(argc, argv);
    util::printBanner(std::cout,
                      "Figure 11: Inception-v3 training cost, AWS "
                      "prices (minimize cost)");
    const bench::TrainedCeer trained =
        bench::trainOnPaperTrainingSet(config);
    const core::CeerPredictor predictor(trained.model);
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();
    const graph::Graph g =
        models::buildModel("inception_v3", config.batch);

    core::WorkloadSpec workload{&g, bench::kImageNetSamples,
                                config.batch};
    const core::Recommendation recommendation = core::recommend(
        predictor, workload, catalog.instances(),
        core::Objective::MinCost);

    util::TablePrinter table(
        {"instance", "obs cost", "pred cost", "error"});
    double total_error = 0.0;
    double observed_best_cost = 1e18;
    std::string observed_best;
    std::map<std::string, double> observed_costs;
    std::uint64_t salt = 300;
    for (const auto &evaluation : recommendation.evaluations) {
        const auto &instance = evaluation.instance;
        const std::int64_t iterations =
            bench::kImageNetSamples / (instance.numGpus * config.batch);
        const double obs_iter_us = bench::observedIterationUs(
            g, instance.gpu, instance.numGpus, config, ++salt);
        const double obs_cost = obs_iter_us *
                                static_cast<double>(iterations) /
                                3.6e9 * instance.hourlyUsd;
        observed_costs[instance.name] = obs_cost;
        const double error = evaluation.costUsd / obs_cost - 1.0;
        total_error += std::abs(error);
        table.addRow({instance.name, util::format("$%.2f", obs_cost),
                      util::format("$%.2f", evaluation.costUsd),
                      util::format("%+.1f%%", 100.0 * error)});
        if (obs_cost < observed_best_cost) {
            observed_best_cost = obs_cost;
            observed_best = instance.name;
        }
    }
    table.print(std::cout);

    const auto &best = recommendation.best();
    std::cout << "Ceer picks: " << best.instance.name
              << ", observed best: " << observed_best << "\n";

    const auto &cheapest_hourly =
        baselines::cheapestInstance(catalog.instances());
    const auto &most_powerful =
        baselines::latestGenerationInstance(catalog.instances());
    const double cheapest_penalty =
        observed_costs.at(cheapest_hourly.name) / observed_best_cost;
    const double powerful_penalty =
        observed_costs.at(most_powerful.name) / observed_best_cost;
    std::cout << "cost penalty of '" << cheapest_hourly.name
              << "' (cheapest-hourly strategy): "
              << util::format("%.2fx", cheapest_penalty)
              << "; of '" << most_powerful.name
              << "' (latest-GPU strategy): "
              << util::format("%.2fx", powerful_penalty) << "\n";

    bench::CheckSummary summary;
    summary.check("Ceer picks the 1-GPU G4 instance (paper: yes)",
                  best.instance.gpu == GpuModel::T4 &&
                          best.instance.numGpus == 1
                      ? 1.0
                      : 0.0,
                  1.0, 1.0);
    summary.check("Ceer's pick matches the observed cheapest",
                  best.instance.name == observed_best ? 1.0 : 0.0, 1.0,
                  1.0);
    summary.check("mean |cost prediction error| (paper: 2.1%)",
                  total_error / recommendation.evaluations.size(), 0.0,
                  0.08);
    summary.check("cheapest-hourly (1-GPU G3) cost penalty "
                  "(paper: 1.6x)",
                  cheapest_penalty, 1.2, 2.2);
    // Our substrate's equal-absolute sync overhead makes the 4-GPU P3
    // configuration pricier relative to 1-GPU G4 than the paper's
    // testbed did (see EXPERIMENTS.md), so the band is wider here.
    summary.check("most-powerful (4-GPU P3) cost penalty "
                  "(paper: 1.8x)",
                  powerful_penalty, 1.3, 3.3);
    return summary.finish();
}
