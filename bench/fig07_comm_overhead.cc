/**
 * @file
 * Figure 7: per-iteration communication overhead of data parallelism
 * at 2 GPUs vs the CNN's trainable-parameter count, for each GPU
 * model, with Ceer's linear fits.
 *
 * Each marker is one training-set CNN; the overhead is obtained by the
 * paper's subtraction method (mean multi-GPU iteration time minus mean
 * 1-GPU iteration time at equal per-GPU batch). Paper claims checked:
 * the relationship is close to linear (regression R^2 0.88-0.98) and
 * the same holds at 3 and 4 GPUs.
 */

#include "bench/common.h"

#include <map>

#include "core/trainer.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;
    using hw::GpuModel;

    const bench::BenchConfig config = bench::parseBenchFlags(argc, argv);
    util::printBanner(std::cout,
                      "Figure 7: comm overhead vs model parameters "
                      "(k = 2), per GPU model");
    const bench::TrainedCeer trained =
        bench::trainOnPaperTrainingSet(config);

    // Reassemble the subtraction-method data points per GPU.
    struct Point
    {
        double params = 0.0;
        double iter1 = 0.0;
        double iter2 = 0.0;
    };
    std::map<GpuModel, std::map<std::string, Point>> points;
    for (const auto &run : trained.dataset.iterations()) {
        Point &point = points[run.gpu][run.model];
        point.params = static_cast<double>(run.paramCount);
        if (run.numGpus == 1)
            point.iter1 = run.meanIterationUs;
        if (run.numGpus == 2)
            point.iter2 = run.meanIterationUs;
    }

    bench::CheckSummary summary;
    for (GpuModel gpu : hw::allGpuModels()) {
        std::cout << "\n" << hw::gpuModelName(gpu) << " ("
                  << hw::gpuFamilyName(gpu) << "):\n";
        util::TablePrinter table({"CNN", "params (M)",
                                  "overhead (ms)", "fit (ms)"});
        const auto &fits = trained.model.comm.fits.at(gpu);
        const auto &fit2 = fits.at(1); // D_2 fit.
        for (const auto &[name, point] : points.at(gpu)) {
            const double overhead_ms =
                (point.iter2 - point.iter1) / 1e3;
            const double fitted_ms =
                fit2.model.predict({point.params}) / 1e3;
            table.addRow({name,
                          util::format("%.1f", point.params / 1e6),
                          util::format("%.1f", overhead_ms),
                          util::format("%.1f", fitted_ms)});
        }
        table.print(std::cout);
        std::cout << "linear fit R^2 = "
                  << util::format("%.3f", fit2.r2) << "\n";
        summary.check("comm fit R^2 (k=2) on " + hw::gpuModelName(gpu) +
                          " (paper band 0.88-0.98+)",
                      fit2.r2, 0.88, 1.0);
        for (int k = 3; k <= 4; ++k) {
            summary.check(util::format("comm fit R^2 (k=%d) on ", k) +
                              hw::gpuModelName(gpu),
                          fits.at(static_cast<std::size_t>(k) - 1).r2,
                          0.85, 1.0);
        }
        // Linear trend: overhead at 140M params well above 10M params.
        const double lo = fit2.model.predict({10e6});
        const double hi = fit2.model.predict({140e6});
        summary.check("overhead grows with params on " +
                          hw::gpuModelName(gpu),
                      hi > 3.0 * lo ? 1.0 : 0.0, 1.0, 1.0);
    }
    return summary.finish();
}
