/**
 * @file
 * Ablation (Sec. IV-B): predicting with heavy-op regressions only —
 * dropping the light-GPU and CPU median terms — raises training-time
 * prediction error to 15-25%, which is why Ceer keeps them.
 *
 * Note: the magnitude depends on how much light/CPU time the CNNs
 * carry. On our substrate light GPU ops and CPU ops contribute ~2-5%
 * of an iteration (the paper's setup carried a heavier CPU-side
 * load), so the reproduced effect is a systematic *underprediction*
 * of a few percent plus an error increase, rather than the paper's
 * 15-25% absolute error; see EXPERIMENTS.md.
 */

#include "bench/common.h"

#include <cmath>

#include "baselines/baselines.h"
#include "models/model_zoo.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;
    using hw::GpuModel;

    const bench::BenchConfig config = bench::parseBenchFlags(argc, argv);
    util::printBanner(std::cout,
                      "Ablation: heavy-ops-only prediction (no "
                      "light/CPU median terms)");
    const bench::TrainedCeer trained =
        bench::trainOnPaperTrainingSet(config);
    const core::CeerPredictor predictor(trained.model);

    util::TablePrinter table({"CNN", "GPU", "observed", "full Ceer",
                              "heavy-only", "full err", "ablated err"});
    double full_error = 0.0, ablated_error = 0.0;
    double full_bias = 0.0, ablated_bias = 0.0;
    int points = 0;
    std::uint64_t salt = 500;
    for (const std::string &name : models::testSetNames()) {
        const graph::Graph g = models::buildModel(name, config.batch);
        for (GpuModel gpu : hw::allGpuModels()) {
            const double observed = bench::observedIterationUs(
                g, gpu, 1, config, ++salt);
            const double full =
                predictor.predictIterationUs(g, gpu, 1);
            const double ablated = predictor.predictIterationUs(
                g, gpu, 1, baselines::heavyOnlyOptions());
            const double fe = std::abs(full / observed - 1.0);
            const double ae = std::abs(ablated / observed - 1.0);
            full_error += fe;
            ablated_error += ae;
            full_bias += full / observed - 1.0;
            ablated_bias += ablated / observed - 1.0;
            ++points;
            table.addRow({name, hw::gpuModelName(gpu),
                          util::humanMicros(observed),
                          util::humanMicros(full),
                          util::humanMicros(ablated),
                          util::format("%.1f%%", 100.0 * fe),
                          util::format("%.1f%%", 100.0 * ae)});
        }
    }
    table.print(std::cout);

    const double mean_full = full_error / points;
    const double mean_ablated = ablated_error / points;
    std::cout << util::format(
        "mean |error|: full Ceer %.1f%%, heavy-only %.1f%%; "
        "mean signed error: %+.1f%% vs %+.1f%%\n",
        100.0 * mean_full, 100.0 * mean_ablated,
        100.0 * full_bias / points, 100.0 * ablated_bias / points);

    bench::CheckSummary summary;
    summary.check("full-Ceer mean error stays small", mean_full, 0.0,
                  0.08);
    summary.check("heavy-only error exceeds full error",
                  mean_ablated - mean_full, 0.003, 1.0);
    // Dropping terms can only remove predicted time: the ablation must
    // bias predictions low, and by more than the full model's bias.
    summary.check("heavy-only prediction biased low (underpredicts)",
                  (full_bias - ablated_bias) / points, 0.005, 1.0);
    summary.check("heavy-only mean error grows toward the paper's "
                  "15-25% band",
                  mean_ablated, 0.04, 0.30);
    return summary.finish();
}
