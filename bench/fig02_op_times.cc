/**
 * @file
 * Figure 2: mean compute time of the 20 heavy GPU operation types on
 * each AWS GPU model, averaged over the profiling iterations of the 8
 * training-set CNNs.
 *
 * Paper claims checked: averaged across heavy ops, P3 is ~10x faster
 * than P2 and ~4x faster than G4; P2 is ~1.5x slower than G3; P3 has
 * the lowest time for every op.
 */

#include "bench/common.h"

#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;
    using bench::BenchConfig;

    const BenchConfig config = bench::parseBenchFlags(argc, argv);
    util::printBanner(std::cout,
                      "Figure 2: operation-level compute times (us)");
    const profile::ProfileDataset dataset =
        bench::collectTrainingProfiles(config, /*multiGpu=*/false);

    util::TablePrinter table(
        {"operation", "P3/V100", "P2/K80", "G4/T4", "G3/M60"});
    double ratio_p2 = 0.0, ratio_g4 = 0.0, ratio_g3 = 0.0;
    int counted = 0;
    int p3_fastest = 0;
    for (graph::OpType op : bench::paperHeavyOps()) {
        const double p3 = dataset.meanTimeUs(hw::GpuModel::V100, op);
        const double p2 = dataset.meanTimeUs(hw::GpuModel::K80, op);
        const double g4 = dataset.meanTimeUs(hw::GpuModel::T4, op);
        const double g3 = dataset.meanTimeUs(hw::GpuModel::M60, op);
        if (p3 <= 0.0)
            continue;
        table.addRow({graph::opTypeName(op), util::format("%.1f", p3),
                      util::format("%.1f", p2),
                      util::format("%.1f", g4),
                      util::format("%.1f", g3)});
        ratio_p2 += p2 / p3;
        ratio_g4 += g4 / p3;
        ratio_g3 += p2 / g3;
        p3_fastest += p3 <= std::min({p2, g4, g3});
        ++counted;
    }
    table.print(std::cout);
    std::cout << counted << " heavy op types (paper: 20), averaged over "
              << config.iterations << " iterations of the 8 training "
              << "CNNs\n\n";

    bench::CheckSummary summary;
    summary.check("mean heavy-op time ratio P2/P3 (paper ~10x)",
                  ratio_p2 / counted, 8.0, 13.0);
    summary.check("mean heavy-op time ratio G4/P3 (paper ~4x)",
                  ratio_g4 / counted, 3.2, 4.8);
    summary.check("mean heavy-op time ratio P2/G3 (paper ~1.5x)",
                  ratio_g3 / counted, 1.3, 1.7);
    summary.check("fraction of ops where P3 is fastest (paper: all)",
                  static_cast<double>(p3_fastest) / counted, 0.95,
                  1.0);
    summary.check("heavy op types shown",
                  static_cast<double>(counted), 18, 20);
    return summary.finish();
}
