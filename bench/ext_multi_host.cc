/**
 * @file
 * Extension experiment (paper Sec. VI, limitation 2): GPUs spread
 * across hosts.
 *
 * The paper's comm model is trained on single-host instances and the
 * authors note it "will have to be retrained" for multi-host
 * deployments. We simulate one-GPU-per-host deployments (NIC on the
 * all-reduce path), show the single-host-trained Ceer underpredicts
 * them, and then retrain the comm model on multi-host runs to recover
 * accuracy — exactly the remediation the paper prescribes.
 */

#include "bench/common.h"

#include <cmath>

#include "core/trainer.h"
#include "models/model_zoo.h"
#include "sim/simulator.h"
#include "util/strings.h"

namespace {

double
observedMultiHostUs(const ceer::graph::Graph &g, ceer::hw::GpuModel gpu,
                    int k, int gpus_per_host, int iterations,
                    std::uint64_t seed)
{
    ceer::sim::SimConfig config;
    config.gpu = gpu;
    config.numGpus = k;
    config.gpusPerHost = gpus_per_host;
    config.seed = seed;
    ceer::sim::TrainingSimulator simulator(g, config);
    return simulator.run(iterations).iterationUs.mean();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ceer;
    using hw::GpuModel;

    const bench::BenchConfig config = bench::parseBenchFlags(argc, argv);
    util::printBanner(std::cout,
                      "Extension: multi-host data parallelism "
                      "(1 GPU per host, k = 4)");

    // Single-host-trained Ceer (the paper's setup).
    const bench::TrainedCeer single_host =
        bench::trainOnPaperTrainingSet(config);
    const core::CeerPredictor single_predictor(single_host.model);

    // Retrained comm model: same pipeline, but the profiled multi-GPU
    // runs span hosts.
    profile::CollectOptions multi_options;
    multi_options.batch = config.batch;
    multi_options.iterations = config.iterations;
    multi_options.seed = config.seed + 777;
    multi_options.gpusPerHost = 1;
    const core::CeerModel retrained = core::trainCeer(
        profile::collectProfiles(models::trainingSetNames(),
                                 multi_options));
    const core::CeerPredictor retrained_predictor(retrained);

    util::TablePrinter table({"CNN", "GPU", "1-host obs", "4-host obs",
                              "1-host-trained err", "retrained err"});
    double slowdown_sum = 0.0;
    double stale_error = 0.0, retrained_error = 0.0;
    double stale_bias = 0.0;
    int points = 0;
    std::uint64_t salt = 1300;
    for (const std::string &name : models::testSetNames()) {
        const graph::Graph g = models::buildModel(name, config.batch);
        for (GpuModel gpu : hw::allGpuModels()) {
            const double single_obs = observedMultiHostUs(
                g, gpu, 4, 8, config.evalIterations,
                config.seed + ++salt);
            const double multi_obs = observedMultiHostUs(
                g, gpu, 4, 1, config.evalIterations,
                config.seed + ++salt);
            const double stale =
                single_predictor.predictIterationUs(g, gpu, 4);
            const double fresh =
                retrained_predictor.predictIterationUs(g, gpu, 4);
            const double stale_err = stale / multi_obs - 1.0;
            const double fresh_err = fresh / multi_obs - 1.0;
            slowdown_sum += multi_obs / single_obs;
            stale_error += std::abs(stale_err);
            stale_bias += stale_err;
            retrained_error += std::abs(fresh_err);
            ++points;
            table.addRow({name, hw::gpuModelName(gpu),
                          util::humanMicros(single_obs),
                          util::humanMicros(multi_obs),
                          util::format("%+.1f%%", 100.0 * stale_err),
                          util::format("%+.1f%%", 100.0 * fresh_err)});
        }
    }
    table.print(std::cout);
    std::cout << util::format(
        "mean 4-host/1-host slowdown: %.2fx; stale model error "
        "%.1f%% (bias %+.1f%%), retrained %.1f%%\n",
        slowdown_sum / points, 100.0 * stale_error / points,
        100.0 * stale_bias / points, 100.0 * retrained_error / points);

    bench::CheckSummary summary;
    summary.check("multi-host deployments are slower (NIC-bound ring)",
                  slowdown_sum / points, 1.02, 10.0);
    summary.check("single-host-trained Ceer underpredicts multi-host "
                  "(paper Sec. VI: needs retraining)",
                  -stale_bias / points, 0.02, 1.0);
    summary.check("retrained comm model recovers accuracy",
                  retrained_error / points, 0.0, 0.10);
    summary.check("retraining beats the stale model",
                  (stale_error - retrained_error) / points, 0.0, 1.0);
    return summary.finish();
}
