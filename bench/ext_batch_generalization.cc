/**
 * @file
 * Extension experiment (beyond the paper): batch-size generalization.
 *
 * The paper trains and evaluates Ceer at batch 32 per GPU. Because
 * Ceer's heavy-op models regress on *input sizes*, a model trained at
 * one batch should transfer to others — the op instances at batch 16
 * or 64 are just different points on the same input-size axis. This
 * bench trains at batch 32 only and predicts held-out CNNs at batches
 * 16, 48 and 64, measuring how the error degrades outside the training
 * batch.
 */

#include "bench/common.h"

#include <cmath>

#include "models/model_zoo.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;
    using hw::GpuModel;

    const bench::BenchConfig config = bench::parseBenchFlags(argc, argv);
    util::printBanner(std::cout,
                      "Extension: train Ceer at batch 32, predict "
                      "batches 16/48/64");
    const bench::TrainedCeer trained =
        bench::trainOnPaperTrainingSet(config); // batch 32 profiles.
    const core::CeerPredictor predictor(trained.model);

    util::TablePrinter table(
        {"CNN", "batch", "mean |err| across GPUs"});
    std::map<std::int64_t, double> error_by_batch;
    std::map<std::int64_t, int> points_by_batch;
    std::uint64_t salt = 900;
    for (const std::string &name : models::testSetNames()) {
        for (std::int64_t batch : {16, 32, 48, 64}) {
            const graph::Graph g = models::buildModel(name, batch);
            double error_sum = 0.0;
            for (GpuModel gpu : hw::allGpuModels()) {
                const double observed = bench::observedIterationUs(
                    g, gpu, 1, config, ++salt);
                const double predicted =
                    predictor.predictIterationUs(g, gpu, 1);
                error_sum += std::abs(predicted / observed - 1.0);
            }
            const double mean_error = error_sum / 4.0;
            error_by_batch[batch] += mean_error;
            points_by_batch[batch]++;
            table.addRow({name, std::to_string(batch),
                          util::format("%.1f%%", 100.0 * mean_error)});
        }
        table.addSeparator();
    }
    table.print(std::cout);

    std::cout << "mean error by batch:";
    for (auto &[batch, total] : error_by_batch) {
        total /= points_by_batch[batch];
        std::cout << util::format(" b%lld=%.1f%%",
                                  static_cast<long long>(batch),
                                  100.0 * total);
    }
    std::cout << "\n";

    bench::CheckSummary summary;
    summary.check("in-distribution (batch 32) error",
                  error_by_batch[32], 0.0, 0.08);
    // Interpolation to nearby batches stays accurate; mild degradation
    // is acceptable since per-op input sizes move along the fitted
    // regressions.
    summary.check("interpolated batch-16 error", error_by_batch[16],
                  0.0, 0.15);
    summary.check("extrapolated batch-48 error", error_by_batch[48],
                  0.0, 0.15);
    summary.check("extrapolated batch-64 error", error_by_batch[64],
                  0.0, 0.20);
    return summary.finish();
}
