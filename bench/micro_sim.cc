/**
 * @file
 * Simulation-kernel throughput microbenchmark.
 *
 * Measures iterations/sec of TrainingSimulator's batched counter-based
 * kernel against a faithful reimplementation of the pre-SoA scalar
 * kernel (array-of-structs node walk + stateful per-replica Rng), and
 * verifies the parallel-run determinism contract: RunStats from
 * run(n, threads) must be byte-identical at every thread count. Writes
 * BENCH_sim.json so future PRs can track the perf trajectory.
 *
 * The swept thread counts are capped at hardware_concurrency(): on an
 * oversubscribed host a "parallel speedup" below 1.0 is a scheduling
 * artifact, and any sub-1.0 measurement that still occurs is flagged
 * in the JSON rather than reported as a silent regression.
 */

#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "hw/interconnect.h"
#include "models/model_zoo.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace ceer;
using Clock = std::chrono::steady_clock;

/**
 * The pre-SoA scalar kernel, kept verbatim as the speedup baseline:
 * one stateful lognormal/gamma draw per node per replica, strictly
 * serial across iterations, AoS timing records.
 */
class ScalarReferenceSimulator
{
  public:
    ScalarReferenceSimulator(const graph::Graph &g,
                             const sim::SimConfig &config)
        : config_(config), commRng_(config.seed, 0xC0FFEEull)
    {
        const hw::GpuTimingModel gpu_model(config.gpu);
        const hw::CpuTimingModel cpu_model(
            hw::hostSpeedFactor(config.gpu));
        timings_.reserve(g.size());
        for (const graph::Node &node : g.nodes()) {
            NodeTiming timing{};
            timing.onGpu = node.device() == graph::Device::Gpu;
            if (timing.onGpu) {
                timing.baseUs = gpu_model.meanTimeUs(node);
                timing.sigma = gpu_model.effectiveSigma(node);
            } else {
                timing.cpuMean = cpu_model.meanTimeUs(node);
            }
            timings_.push_back(timing);
            if (node.type == graph::OpType::IteratorGetNext)
                inputBytes_ += static_cast<double>(node.outputBytes());
        }
        paramBytes_ = static_cast<double>(g.totalParameters()) * 4.0;
        for (int r = 0; r < config.numGpus; ++r)
            replicaRngs_.emplace_back(config.seed,
                                      static_cast<std::uint64_t>(r) + 1);
    }

    sim::IterationResult runIteration()
    {
        sim::IterationResult result;
        double slowest = 0.0;
        for (auto &rng : replicaRngs_) {
            double total = 0.0;
            for (const NodeTiming &timing : timings_) {
                if (timing.onGpu) {
                    total += timing.baseUs *
                             rng.lognormalFactor(timing.sigma);
                } else {
                    constexpr double kShape = 2.78;
                    total += timing.cpuMean *
                             rng.gamma(kShape, 1.0 / kShape);
                }
            }
            slowest = std::max(slowest, total);
        }
        result.computeUs = slowest;
        result.commUs = hw::sampleCommOverheadUs(
            config_.gpu, config_.numGpus, paramBytes_, inputBytes_,
            commRng_, config_.gpusPerHost);
        return result;
    }

  private:
    struct NodeTiming
    {
        double baseUs;
        double sigma;
        bool onGpu;
        double cpuMean;
    };

    sim::SimConfig config_;
    std::vector<NodeTiming> timings_;
    std::vector<util::Rng> replicaRngs_;
    util::Rng commRng_;
    double paramBytes_ = 0.0;
    double inputBytes_ = 0.0;
};

/** Bit pattern of a double (== would conflate +0.0 and -0.0). */
std::uint64_t
bits(double x)
{
    std::uint64_t u;
    std::memcpy(&u, &x, sizeof u);
    return u;
}

/** mean/stddev/count/min/max of a RunStats triple, bit-for-bit. */
bool
statsIdentical(const sim::RunStats &a, const sim::RunStats &b)
{
    auto same = [](const util::RunningStats &x,
                   const util::RunningStats &y) {
        return x.count() == y.count() &&
               bits(x.mean()) == bits(y.mean()) &&
               bits(x.stddev()) == bits(y.stddev()) &&
               bits(x.min()) == bits(y.min()) &&
               bits(x.max()) == bits(y.max());
    };
    return same(a.iterationUs, b.iterationUs) &&
           same(a.computeUs, b.computeUs) && same(a.commUs, b.commUs);
}

} // namespace

int
main(int argc, char **argv)
{
    util::Flags flags;
    flags.defineString("model", "inception_v1", "CNN to simulate");
    // Large enough that the batched kernel's timed region is hundreds
    // of milliseconds; at a few hundred iterations it finishes in
    // single-digit milliseconds and the speedup is mostly timer noise.
    flags.defineInt("iters", 20000, "iterations per timed run");
    flags.defineInt("gpus", 1, "data-parallel replicas");
    flags.defineString("out", "BENCH_sim.json",
                       "machine-readable results ('' disables)");
    flags.defineString("metrics-out", "",
                       "write a metrics JSON snapshot here (enables "
                       "observability for the run)");
    flags.parse(argc, argv);
    bench::setMetricsOut(flags.getString("metrics-out"));

    const std::string model = flags.getString("model");
    const int iters = static_cast<int>(flags.getInt("iters"));
    const unsigned hardware = std::thread::hardware_concurrency();

    sim::SimConfig config;
    config.numGpus = static_cast<int>(flags.getInt("gpus"));
    const graph::Graph g = models::buildModel(model, 32);

    util::printBanner(std::cout,
                      "micro_sim: simulation-kernel throughput (" +
                          model + ", " + std::to_string(iters) +
                          " iterations)");
    std::cout << "hardware threads: " << hardware << "\n";

    // --- Single-thread kernel comparison: scalar vs batched. ---
    ScalarReferenceSimulator scalar(g, config);
    double scalar_checksum = 0.0;
    const auto scalar_start = Clock::now();
    for (int i = 0; i < iters; ++i)
        scalar_checksum += scalar.runIteration().totalUs();
    const double scalar_wall =
        std::chrono::duration<double>(Clock::now() - scalar_start)
            .count();

    sim::TrainingSimulator batched(g, config);
    double batched_checksum = 0.0;
    const auto batched_start = Clock::now();
    for (int i = 0; i < iters; ++i)
        batched_checksum += batched.runIteration().totalUs();
    const double batched_wall =
        std::chrono::duration<double>(Clock::now() - batched_start)
            .count();

    const double scalar_ips = iters / scalar_wall;
    const double batched_ips = iters / batched_wall;
    const double kernel_speedup = batched_ips / scalar_ips;

    util::TablePrinter kernel_table(
        {"kernel", "wall (s)", "iters/sec", "speedup"});
    kernel_table.addRow({"scalar (pre-SoA)",
                         util::format("%.3f", scalar_wall),
                         util::format("%.1f", scalar_ips), "1.00x"});
    kernel_table.addRow({"batched SoA", util::format("%.3f", batched_wall),
                         util::format("%.1f", batched_ips),
                         util::format("%.2fx", kernel_speedup)});
    kernel_table.print(std::cout);
    // Checksums keep the loops from being optimized away.
    std::cout << util::format("checksums: scalar %.3e, batched %.3e\n",
                              scalar_checksum, batched_checksum);

    // --- Iteration-parallel runs: identity + scaling. ---
    // Identity is always checked at 1/2/4 threads — the determinism
    // contract holds at any thread count, oversubscribed or not — but
    // larger counts are swept only up to the hardware, where speedup
    // numbers stop meaning anything (any sub-1.0 point is flagged).
    std::vector<int> sweep{1, 2, 4};
    for (int t = 8; t <= static_cast<int>(hardware ? hardware : 1);
         t *= 2)
        sweep.push_back(t);

    struct Result
    {
        int threads;
        double wallSeconds;
        double itersPerSecond;
        double speedup;
        bool identical;
        bool belowSerial;
    };
    // On a single-core host every multi-thread point measures
    // scheduling, not speedup: identity is still checked, but the
    // below-serial flag is suppressed and the JSON says so.
    const bool scaling_meaningful = hardware >= 2;
    std::vector<Result> results;
    sim::RunStats reference;
    double serial_wall = 0.0;
    bool all_identical = true;

    util::TablePrinter run_table(
        {"threads", "wall (s)", "iters/sec", "speedup", "identical"});
    for (int threads : sweep) {
        sim::TrainingSimulator simulator(g, config);
        const auto start = Clock::now();
        const sim::RunStats stats = simulator.run(iters, threads);
        const double wall =
            std::chrono::duration<double>(Clock::now() - start).count();
        if (threads == 1) {
            reference = stats;
            serial_wall = wall;
        }
        Result r;
        r.threads = threads;
        r.wallSeconds = wall;
        r.itersPerSecond = iters / wall;
        r.speedup = serial_wall / wall;
        r.identical = statsIdentical(stats, reference);
        r.belowSerial =
            scaling_meaningful && threads > 1 && r.speedup < 1.0;
        all_identical &= r.identical;
        results.push_back(r);
        run_table.addRow(
            {std::to_string(threads), util::format("%.3f", wall),
             util::format("%.1f", r.itersPerSecond),
             util::format("%.2fx", r.speedup),
             r.identical ? "yes" : "NO"});
        if (!r.identical) {
            std::cerr << "FAIL: RunStats at " << threads
                      << " threads differ from the serial run\n";
        }
    }
    run_table.print(std::cout);
    if (!scaling_meaningful) {
        std::cout << "note: single hardware thread; scaling assertions "
                     "skipped (identity still enforced)\n";
    }

    int below_serial = 0;
    for (const Result &r : results)
        below_serial += r.belowSerial ? 1 : 0;
    bench::JsonObject doc;
    doc.str("benchmark", "sim_kernel_throughput")
        .str("model", model)
        .num("iterations", iters)
        .num("num_gpus", config.numGpus);
    bench::addScalingFields(doc, hardware, scaling_meaningful);
    doc.num("scalar_iters_per_sec", scalar_ips, "%.1f")
        .num("batched_iters_per_sec", batched_ips, "%.1f")
        .num("single_thread_speedup", kernel_speedup, "%.4f")
        .boolean("parallel_identity_ok", all_identical)
        .num("below_serial_measurements", below_serial);
    std::vector<bench::JsonObject> rows;
    for (const Result &r : results) {
        bench::JsonObject row;
        row.num("threads", r.threads)
            .num("wall_s", r.wallSeconds, "%.6f")
            .num("iters_per_sec", r.itersPerSecond, "%.1f")
            .num("speedup", r.speedup, "%.4f")
            .boolean("identical", r.identical)
            .boolean("below_serial", r.belowSerial);
        rows.push_back(std::move(row));
    }
    doc.array("results", std::move(rows));
    if (!bench::writeBenchJson(flags.getString("out"), doc))
        return 1;
    bench::flushBenchMetrics();
    return all_identical ? 0 : 1;
}
