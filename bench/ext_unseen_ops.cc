/**
 * @file
 * Extension experiment (paper Secs. IV-D and VI, limitations 1/4):
 * predicting a model whose heavy operations were never profiled.
 *
 * A BERT-base-style Transformer is dominated by BatchMatMul,
 * LayerNorm, Gelu and Gather kernels that do not occur in any of the
 * paper's CNNs. Per Sec. IV-D, Ceer falls back to the median estimate
 * for unseen heavy ops — which must underpredict badly — and "will
 * have to be updated with new training data" to handle them. This
 * bench quantifies the failure and verifies that adding the
 * Transformer to the training set restores accuracy.
 */

#include "bench/common.h"

#include <cmath>

#include "core/trainer.h"
#include "models/model_zoo.h"
#include "sim/simulator.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;
    using hw::GpuModel;

    const bench::BenchConfig config = bench::parseBenchFlags(argc, argv);
    util::printBanner(std::cout,
                      "Extension: predicting a Transformer with a "
                      "CNN-trained Ceer (unseen heavy ops)");

    // CNN-only Ceer (the paper's training set).
    const bench::TrainedCeer cnn_only =
        bench::trainOnPaperTrainingSet(config);
    const core::CeerPredictor cnn_predictor(cnn_only.model);

    // Retrained: the 8 CNNs plus the Transformer.
    profile::CollectOptions options;
    options.batch = config.batch;
    options.iterations = config.iterations;
    options.seed = config.seed + 4321;
    std::vector<std::string> extended = models::trainingSetNames();
    extended.push_back("transformer_encoder");
    const core::CeerModel retrained =
        core::trainCeer(profile::collectProfiles(extended, options));
    const core::CeerPredictor retrained_predictor(retrained);

    const graph::Graph g =
        models::buildTransformerEncoder(config.batch);
    std::cout << "transformer_encoder: " << g.size() << " ops, "
              << util::format("%.1fM", g.totalParameters() / 1e6)
              << " params\n";

    // Which of its op types are heavy-and-unseen for the CNN model?
    std::set<graph::OpType> unseen;
    for (const auto &node : g.nodes()) {
        if (node.device() != graph::Device::Gpu)
            continue;
        if (retrained.classify(node.type) == core::OpClass::Heavy &&
            !cnn_only.model.opModel(GpuModel::V100, node.type)) {
            unseen.insert(node.type);
        }
    }
    std::cout << "heavy op types with no CNN-trained model:";
    for (graph::OpType op : unseen)
        std::cout << " " << graph::opTypeName(op);
    std::cout << "\n\n";

    util::TablePrinter table({"GPU", "observed", "CNN-only Ceer",
                              "retrained", "CNN-only err",
                              "retrained err"});
    double stale_bias = 0.0, stale_error = 0.0, retrained_error = 0.0;
    std::uint64_t salt = 0;
    for (GpuModel gpu : hw::allGpuModels()) {
        const double observed = bench::observedIterationUs(
            g, gpu, 1, config, 1500 + ++salt);
        const double stale =
            cnn_predictor.predictIterationUs(g, gpu, 1);
        const double fresh =
            retrained_predictor.predictIterationUs(g, gpu, 1);
        const double stale_err = stale / observed - 1.0;
        const double fresh_err = fresh / observed - 1.0;
        stale_bias += stale_err;
        stale_error += std::abs(stale_err);
        retrained_error += std::abs(fresh_err);
        table.addRow({hw::gpuModelName(gpu),
                      util::humanMicros(observed),
                      util::humanMicros(stale),
                      util::humanMicros(fresh),
                      util::format("%+.0f%%", 100.0 * stale_err),
                      util::format("%+.1f%%", 100.0 * fresh_err)});
    }
    table.print(std::cout);

    // Contrast: an unrolled LSTM (Sec. VI's other future-work family)
    // is built almost entirely from CNN-known kernels (MatMul, Slice,
    // Mul, ConcatV2...), so the *same* CNN-trained Ceer predicts it
    // without retraining — the failure above is about unseen ops, not
    // about non-CNN topology per se.
    const graph::Graph lstm =
        models::buildLstmClassifier(config.batch);
    double lstm_error = 0.0;
    for (GpuModel gpu : hw::allGpuModels()) {
        const double observed = bench::observedIterationUs(
            lstm, gpu, 1, config, 1700 + ++salt);
        const double predicted =
            cnn_predictor.predictIterationUs(lstm, gpu, 1);
        lstm_error += std::abs(predicted / observed - 1.0);
    }
    std::cout << util::format(
        "contrast: lstm_classifier (%zu ops, mostly CNN-known "
        "kernels) CNN-only error: %.1f%%\n",
        lstm.size(), 100.0 * lstm_error / 4.0);

    // MobileNet-v1: a plain CNN, but built on depthwise convolutions
    // that postdate the zoo — the paper's "new operations may be
    // developed over time" case (Sec. IV-D) inside the CNN family.
    const graph::Graph mobilenet =
        models::buildMobileNetV1(config.batch);
    double mobilenet_bias = 0.0;
    for (GpuModel gpu : hw::allGpuModels()) {
        const double observed = bench::observedIterationUs(
            mobilenet, gpu, 1, config, 1900 + ++salt);
        const double predicted =
            cnn_predictor.predictIterationUs(mobilenet, gpu, 1);
        mobilenet_bias += predicted / observed - 1.0;
    }
    std::cout << util::format(
        "contrast: mobilenet_v1 (depthwise convs, a post-zoo CNN op) "
        "CNN-only bias: %+.1f%%\n", 100.0 * mobilenet_bias / 4.0);

    bench::CheckSummary summary;
    summary.check("unseen heavy op types in the Transformer "
                  "(BatchMatMul/LayerNorm/Gelu/...)",
                  static_cast<double>(unseen.size()), 3, 10);
    summary.check("CNN-only Ceer underpredicts (median fallback, "
                  "paper Sec. IV-D)",
                  -stale_bias / 4.0, 0.10, 1.0);
    summary.check("retraining with the Transformer restores accuracy",
                  retrained_error / 4.0, 0.0, 0.10);
    summary.check("error reduction from retraining",
                  (stale_error - retrained_error) / 4.0, 0.10, 1.0);
    summary.check("CNN-trained Ceer handles the LSTM without "
                  "retraining (known kernels)",
                  lstm_error / 4.0, 0.0, 0.20);
    summary.check("MobileNet's depthwise convs trigger the fallback "
                  "too (underprediction)",
                  -mobilenet_bias / 4.0, 0.05, 1.0);
    return summary.finish();
}
