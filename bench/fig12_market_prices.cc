/**
 * @file
 * Figure 12: budget minimization for Inception-v3 again, but with the
 * commodity-market GPU price ratios (1 : 0.31 : 0.18 : 0.05 for
 * V100 : T4 : M60 : K80 -> $3.06 / $0.95 / $0.55 / $0.15 per GPU).
 *
 * Paper claims checked: the winner flips to the 1-GPU P2 instance;
 * Ceer predicts it; cost prediction error stays ~2.1%; keeping the
 * Fig. 11 winner (1-GPU G4) would cost ~2.4x more.
 */

#include "bench/common.h"

#include <cmath>

#include "cloud/instances.h"
#include "core/recommender.h"
#include "models/model_zoo.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;
    using hw::GpuModel;

    const bench::BenchConfig config = bench::parseBenchFlags(argc, argv);
    util::printBanner(std::cout,
                      "Figure 12: Inception-v3 training cost, market "
                      "GPU prices (minimize cost)");
    const bench::TrainedCeer trained =
        bench::trainOnPaperTrainingSet(config);
    const core::CeerPredictor predictor(trained.model);
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::marketPriced();
    const graph::Graph g =
        models::buildModel("inception_v3", config.batch);

    core::WorkloadSpec workload{&g, bench::kImageNetSamples,
                                config.batch};
    const core::Recommendation recommendation = core::recommend(
        predictor, workload, catalog.instances(),
        core::Objective::MinCost);

    util::TablePrinter table(
        {"instance", "$/hr", "obs cost", "pred cost", "error"});
    double total_error = 0.0;
    double observed_best_cost = 1e18;
    std::string observed_best;
    double g4_1gpu_cost = 0.0;
    std::uint64_t salt = 400;
    for (const auto &evaluation : recommendation.evaluations) {
        const auto &instance = evaluation.instance;
        const std::int64_t iterations =
            bench::kImageNetSamples / (instance.numGpus * config.batch);
        const double obs_iter_us = bench::observedIterationUs(
            g, instance.gpu, instance.numGpus, config, ++salt);
        const double obs_cost = obs_iter_us *
                                static_cast<double>(iterations) /
                                3.6e9 * instance.hourlyUsd;
        const double error = evaluation.costUsd / obs_cost - 1.0;
        total_error += std::abs(error);
        table.addRow({instance.name,
                      util::format("%.2f", instance.hourlyUsd),
                      util::format("$%.2f", obs_cost),
                      util::format("$%.2f", evaluation.costUsd),
                      util::format("%+.1f%%", 100.0 * error)});
        if (obs_cost < observed_best_cost) {
            observed_best_cost = obs_cost;
            observed_best = instance.name;
        }
        if (instance.gpu == GpuModel::T4 && instance.numGpus == 1)
            g4_1gpu_cost = obs_cost;
    }
    table.print(std::cout);

    const auto &best = recommendation.best();
    std::cout << "Ceer picks: " << best.instance.name
              << ", observed best: " << observed_best << "\n";

    bench::CheckSummary summary;
    summary.check("Ceer picks the 1-GPU P2 instance (paper: yes)",
                  best.instance.gpu == GpuModel::K80 &&
                          best.instance.numGpus == 1
                      ? 1.0
                      : 0.0,
                  1.0, 1.0);
    summary.check("Ceer's pick matches the observed cheapest",
                  best.instance.name == observed_best ? 1.0 : 0.0, 1.0,
                  1.0);
    summary.check("mean |cost prediction error| (paper: 2.1%)",
                  total_error / recommendation.evaluations.size(), 0.0,
                  0.08);
    summary.check("1-GPU G4 (Fig. 11 winner) cost penalty under "
                  "market prices (paper: 2.4x)",
                  g4_1gpu_cost / observed_best_cost, 1.5, 3.5);
    return summary.finish();
}
