/**
 * @file
 * Cross-predictor accuracy table (the paper's Table 5 extended with
 * the related-work baselines): every registered baselines::Predictor
 * trained on the 8-CNN training set and evaluated on the 4 held-out
 * test CNNs over the full GPU x k grid.
 *
 * The paper reports ~8-15% mean error for Ceer on unseen CNNs; the
 * PALEO-style FLOP count and the transfer/structure baselines land
 * far above that, which is exactly the comparison this table pins.
 */

#include "bench/common.h"

#include "baselines/evaluate.h"
#include "baselines/predictor.h"
#include "models/model_zoo.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;

    const bench::BenchConfig config = bench::parseBenchFlags(argc, argv);
    util::printBanner(std::cout,
                      "Cross-predictor accuracy: related-work "
                      "baselines vs Ceer on the held-out test CNNs");

    const profile::ProfileDataset dataset =
        bench::collectTrainingProfiles(config, true);
    const std::vector<std::unique_ptr<baselines::Predictor>>
        predictors = baselines::makeAllPredictors();

    baselines::EvalOptions options;
    options.models = models::testSetNames();
    options.batch = config.batch;
    options.datasetSamples = bench::kImageNetSamples;
    options.evalIterations = config.evalIterations;
    options.seed = config.seed;
    options.threads = config.threads == 0 ? 0 : config.threads;
    const baselines::EvalReport report =
        baselines::runEvaluation(dataset, predictors, options);

    util::TablePrinter table({"predictor", "MAPE (%)", "RMSE (ms)",
                              "rank corr", "agreement"});
    double ceer_mape = 0.0, best_other_mape = 1e18;
    double flops_mape = 0.0, ceer_spearman = 0.0;
    for (const baselines::EvalSummaryRow &row : report.summary) {
        table.addRow({row.predictor,
                      util::format("%.2f", row.mapePct),
                      util::format("%.3f", row.rmseUs / 1000.0),
                      util::format("%.3f", row.meanSpearman),
                      util::format("%.0f%%",
                                   row.agreementRate * 100.0)});
        if (row.predictor == "ceer") {
            ceer_mape = row.mapePct;
            ceer_spearman = row.meanSpearman;
        } else {
            best_other_mape = std::min(best_other_mape, row.mapePct);
        }
        if (row.predictor == "paleo_flops")
            flops_mape = row.mapePct;
    }
    table.print(std::cout);

    bench::CheckSummary summary;
    summary.check("Ceer mean error on unseen CNNs (paper: ~8-15%)",
                  ceer_mape / 100.0, 0.02, 0.20);
    summary.check("Ceer beats every baseline (margin vs best other)",
                  ceer_mape < best_other_mape ? 1.0 : 0.0, 1.0, 1.0);
    summary.check("PALEO-style FLOP error is large (paper: peak "
                  "FLOPS ignores the memory-bound ops)",
                  flops_mape / 100.0, 0.25, 10.0);
    summary.check("Ceer ranks configurations almost perfectly",
                  ceer_spearman, 0.9, 1.0);
    return summary.finish();
}
