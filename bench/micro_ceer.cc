/**
 * @file
 * Prediction-path throughput microbenchmark.
 *
 * Measures the compiled-plan predictor (CeerPredictor::compile +
 * predictBatch) against the scalar node walk it replaces, and the
 * parallel recommender sweep against the serial one, verifying both
 * determinism contracts along the way: every compiled prediction must
 * be bit-identical to the node walk, and the Recommendation — winner
 * and full evaluation list — must be byte-identical at every thread
 * count. Writes BENCH_ceer.json so future PRs can track the perf
 * trajectory.
 *
 * Thread counts beyond the hardware are not swept: on an
 * oversubscribed host a "parallel speedup" below 1.0 is a scheduling
 * artifact, and any sub-1.0 measurement that still occurs is flagged
 * in the JSON rather than reported as a silent regression.
 */

#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "cloud/instances.h"
#include "core/predictor.h"
#include "core/recommender.h"
#include "core/trainer.h"
#include "models/model_zoo.h"
#include "profile/profiler.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace ceer;
using Clock = std::chrono::steady_clock;

/** Bit pattern of a double (== would conflate +0.0 and -0.0). */
std::uint64_t
bits(double x)
{
    std::uint64_t u;
    std::memcpy(&u, &x, sizeof u);
    return u;
}

/** Field-by-field bit comparison of two candidate evaluations. */
bool
evaluationsIdentical(const core::CandidateEvaluation &a,
                     const core::CandidateEvaluation &b)
{
    return a.instance.name == b.instance.name &&
           a.prediction.iterations == b.prediction.iterations &&
           bits(a.prediction.iterationUs) ==
               bits(b.prediction.iterationUs) &&
           bits(a.prediction.hours) == bits(b.prediction.hours) &&
           bits(a.costUsd) == bits(b.costUsd) &&
           a.withinHourly == b.withinHourly &&
           a.withinTotal == b.withinTotal &&
           a.fitsMemory == b.fitsMemory;
}

} // namespace

int
main(int argc, char **argv)
{
    util::Flags flags;
    flags.defineString("model", "resnet_101", "CNN to predict");
    // Large enough that the scalar walk's timed region is hundreds of
    // milliseconds; the compiled path then resolves well above timer
    // noise even at >100x speedups.
    flags.defineInt("iters", 2000,
                    "prediction rounds per timed run (each round "
                    "evaluates every GPU x k candidate)");
    flags.defineInt("train-iters", 30, "profiling iterations for the "
                                       "throwaway training fixture");
    flags.defineInt("catalog-copies", 64,
                    "catalog replication factor for the recommender "
                    "sweep");
    flags.defineInt("threads", 0,
                    "max swept thread count (0 = hardware)");
    flags.defineString("out", "BENCH_ceer.json",
                       "machine-readable results ('' disables)");
    flags.defineString("metrics-out", "",
                       "write a metrics JSON snapshot here (enables "
                       "observability for the run)");
    flags.parse(argc, argv);
    bench::setMetricsOut(flags.getString("metrics-out"));

    const std::string model_name = flags.getString("model");
    const int iters = static_cast<int>(flags.getInt("iters"));
    const unsigned hardware = std::thread::hardware_concurrency();
    const int max_threads =
        flags.getInt("threads") > 0
            ? static_cast<int>(flags.getInt("threads"))
            : static_cast<int>(hardware ? hardware : 1);

    util::printBanner(std::cout,
                      "micro_ceer: prediction-path throughput (" +
                          model_name + ", " + std::to_string(iters) +
                          " rounds)");
    std::cout << "hardware threads: " << hardware << "\n";

    profile::CollectOptions collect;
    collect.iterations = static_cast<int>(flags.getInt("train-iters"));
    const core::CeerPredictor predictor(core::trainCeer(
        profile::collectProfiles(models::trainingSetNames(), collect)));
    const graph::Graph g = models::buildModel(model_name, 32);

    // Every (GPU, k) candidate of one workload — the shape of a
    // recommender query.
    std::vector<core::PredictRequest> requests;
    for (hw::GpuModel gpu : hw::allGpuModels())
        for (int k : {1, 2, 4, 8})
            requests.push_back({gpu, k});

    // --- Scalar node walk vs compiled plan. ---
    double scalar_checksum = 0.0;
    const auto scalar_start = Clock::now();
    for (int i = 0; i < iters; ++i)
        for (const core::PredictRequest &request : requests)
            scalar_checksum += predictor.predictIterationUs(
                g, request.gpu, request.numGpus);
    const double scalar_wall =
        std::chrono::duration<double>(Clock::now() - scalar_start)
            .count();

    const auto compile_start = Clock::now();
    const core::PredictPlan plan = predictor.compile(g);
    const double compile_wall =
        std::chrono::duration<double>(Clock::now() - compile_start)
            .count();

    double compiled_checksum = 0.0;
    const auto compiled_start = Clock::now();
    for (int i = 0; i < iters; ++i) {
        for (double us : predictor.predictBatch(plan, requests))
            compiled_checksum += us;
    }
    const double compiled_wall =
        std::chrono::duration<double>(Clock::now() - compiled_start)
            .count();

    // Bit-identity of every candidate (the checksums above only keep
    // the loops from being optimized away — equality of sums would
    // not prove per-candidate equality).
    bool predict_identical = true;
    const std::vector<double> batch =
        predictor.predictBatch(plan, requests);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const double scalar = predictor.predictIterationUs(
            g, requests[i].gpu, requests[i].numGpus);
        if (bits(scalar) != bits(batch[i])) {
            predict_identical = false;
            std::cerr << "FAIL: candidate " << i
                      << " compiled prediction differs from the "
                         "node walk\n";
        }
    }

    const double rounds_per_sec_scalar = iters / scalar_wall;
    const double rounds_per_sec_compiled = iters / compiled_wall;
    const double predict_speedup = scalar_wall / compiled_wall;

    util::TablePrinter predict_table(
        {"predictor", "wall (s)", "rounds/sec", "speedup"});
    predict_table.addRow({"scalar node walk",
                          util::format("%.3f", scalar_wall),
                          util::format("%.1f", rounds_per_sec_scalar),
                          "1.00x"});
    predict_table.addRow({"compiled plan",
                          util::format("%.3f", compiled_wall),
                          util::format("%.1f", rounds_per_sec_compiled),
                          util::format("%.2fx", predict_speedup)});
    predict_table.print(std::cout);
    std::cout << util::format(
        "compile() cost: %.1f us (amortized over %d rounds); "
        "checksums: scalar %.6e, compiled %.6e\n",
        compile_wall * 1e6, iters, scalar_checksum, compiled_checksum);

    // --- Recommender sweep: serial vs parallel over a big catalog. ---
    // The real AWS catalog has 16 candidates — too few for a thread
    // sweep to mean anything — so replicate it (distinct names, same
    // silicon/prices). Every copy scores identically and the serial
    // reduction keeps the first, so replication changes no answer.
    const cloud::InstanceCatalog base =
        cloud::InstanceCatalog::awsOnDemand();
    std::vector<cloud::GpuInstance> candidates;
    const int copies =
        static_cast<int>(flags.getInt("catalog-copies"));
    for (int c = 0; c < copies; ++c) {
        for (cloud::GpuInstance instance : base.instances()) {
            if (c > 0)
                instance.name += "#" + std::to_string(c);
            candidates.push_back(std::move(instance));
        }
    }
    core::WorkloadSpec workload{&g, 1'200'000, 32};

    std::vector<int> sweep{1, 2, 4};
    for (int t = 8; t <= max_threads; t *= 2)
        sweep.push_back(t);

    struct Result
    {
        int threads;
        double wallSeconds;
        double speedup;
        bool identical;
        bool belowSerial;
    };
    // On a single-core host every multi-thread point measures
    // scheduling, not speedup: identity is still checked, but the
    // below-serial flag is suppressed and the JSON says so.
    const bool scaling_meaningful = hardware >= 2;
    std::vector<Result> results;
    core::Recommendation reference;
    double serial_wall = 0.0;
    bool sweep_identical = true;

    util::TablePrinter sweep_table(
        {"threads", "wall (s)", "candidates/sec", "speedup",
         "identical"});
    for (int threads : sweep) {
        const auto start = Clock::now();
        const core::Recommendation recommendation = core::recommend(
            predictor, workload, candidates, core::Objective::MinCost,
            core::Constraints{}, threads);
        const double wall =
            std::chrono::duration<double>(Clock::now() - start).count();
        if (threads == 1) {
            reference = recommendation;
            serial_wall = wall;
        }
        Result r;
        r.threads = threads;
        r.wallSeconds = wall;
        r.speedup = serial_wall / wall;
        r.identical =
            recommendation.bestIndex == reference.bestIndex &&
            recommendation.evaluations.size() ==
                reference.evaluations.size();
        if (r.identical) {
            for (std::size_t i = 0; i < reference.evaluations.size();
                 ++i) {
                if (!evaluationsIdentical(reference.evaluations[i],
                                          recommendation
                                              .evaluations[i])) {
                    r.identical = false;
                    break;
                }
            }
        }
        r.belowSerial =
            scaling_meaningful && threads > 1 && r.speedup < 1.0;
        sweep_identical &= r.identical;
        results.push_back(r);
        sweep_table.addRow(
            {std::to_string(threads), util::format("%.3f", wall),
             util::format("%.1f", candidates.size() / wall),
             util::format("%.2fx", r.speedup),
             r.identical ? "yes" : "NO"});
        if (!r.identical) {
            std::cerr << "FAIL: recommendation at " << threads
                      << " threads differs from the serial sweep\n";
        }
    }
    sweep_table.print(std::cout);
    if (!scaling_meaningful) {
        std::cout << "note: single hardware thread; scaling assertions "
                     "skipped (identity still enforced)\n";
    }

    const bool all_identical = predict_identical && sweep_identical;
    int below_serial = 0;
    for (const Result &r : results)
        below_serial += r.belowSerial ? 1 : 0;
    bench::JsonObject doc;
    doc.str("benchmark", "prediction_path_throughput")
        .str("model", model_name)
        .num("rounds", iters)
        .num("candidates_per_round",
             static_cast<std::int64_t>(requests.size()));
    bench::addScalingFields(doc, hardware, scaling_meaningful);
    doc.num("scalar_rounds_per_sec", rounds_per_sec_scalar, "%.1f")
        .num("compiled_rounds_per_sec", rounds_per_sec_compiled, "%.1f")
        .num("compile_us", compile_wall * 1e6, "%.1f")
        .num("predict_speedup", predict_speedup, "%.4f")
        .boolean("predict_identity_ok", predict_identical)
        .num("recommender_candidates",
             static_cast<std::int64_t>(candidates.size()))
        .boolean("recommender_identity_ok", sweep_identical)
        .num("below_serial_measurements", below_serial);
    std::vector<bench::JsonObject> rows;
    for (const Result &r : results) {
        bench::JsonObject row;
        row.num("threads", r.threads)
            .num("wall_s", r.wallSeconds, "%.6f")
            .num("speedup", r.speedup, "%.4f")
            .boolean("identical", r.identical)
            .boolean("below_serial", r.belowSerial);
        rows.push_back(std::move(row));
    }
    doc.array("recommender_sweep", std::move(rows));
    if (!bench::writeBenchJson(flags.getString("out"), doc))
        return 1;
    bench::flushBenchMetrics();
    return all_identical ? 0 : 1;
}
