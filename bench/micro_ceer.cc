/**
 * @file
 * google-benchmark microbenchmarks of the library itself: graph
 * construction, simulated training iterations, profiling, regression
 * fitting, prediction latency and the end-to-end recommendation query.
 *
 * These quantify what a downstream user pays for each API call; they
 * reproduce no paper figure.
 */

#include <sstream>

#include <benchmark/benchmark.h>

#include "cloud/instances.h"
#include "hw/memory.h"
#include "core/predictor.h"
#include "core/recommender.h"
#include "core/trainer.h"
#include "models/model_zoo.h"
#include "profile/profiler.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "util/random.h"

namespace {

using namespace ceer;

void
BM_BuildInceptionV3(benchmark::State &state)
{
    for (auto _ : state) {
        graph::Graph g = models::buildInceptionV3(32);
        benchmark::DoNotOptimize(g.size());
    }
}
BENCHMARK(BM_BuildInceptionV3)->Unit(benchmark::kMillisecond);

void
BM_BuildResNet200(benchmark::State &state)
{
    for (auto _ : state) {
        graph::Graph g = models::buildResNetV2(200, 32);
        benchmark::DoNotOptimize(g.size());
    }
}
BENCHMARK(BM_BuildResNet200)->Unit(benchmark::kMillisecond);

void
BM_SimulateIteration(benchmark::State &state)
{
    const graph::Graph g = models::buildInceptionV3(32);
    sim::SimConfig config;
    config.numGpus = static_cast<int>(state.range(0));
    sim::TrainingSimulator simulator(g, config);
    for (auto _ : state) {
        benchmark::DoNotOptimize(simulator.runIteration().totalUs());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(g.size()) *
                            state.range(0));
}
BENCHMARK(BM_SimulateIteration)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

void
BM_ProfileRun(benchmark::State &state)
{
    const graph::Graph g = models::buildInceptionV1(32);
    for (auto _ : state) {
        sim::SimConfig config;
        auto result = profile::profileRun(g, "inception_v1", config,
                                          static_cast<int>(
                                              state.range(0)));
        benchmark::DoNotOptimize(result.first.size());
    }
}
BENCHMARK(BM_ProfileRun)->Arg(10)->Unit(benchmark::kMillisecond);

void
BM_LinearRegressionFit(benchmark::State &state)
{
    util::Rng rng(7);
    std::vector<std::vector<double>> X;
    std::vector<double> y;
    for (int i = 0; i < 200; ++i) {
        const double a = rng.uniform(0, 2e8);
        const double b = rng.uniform(0, 1e8);
        X.push_back({a + b, a, b, a / 1e3});
        y.push_back(5.0 + a / 65e3 + rng.normal(0, 3.0));
    }
    for (auto _ : state) {
        const core::LinearModel model = core::LinearModel::fit(X, y);
        benchmark::DoNotOptimize(model.intercept());
    }
}
BENCHMARK(BM_LinearRegressionFit)->Unit(benchmark::kMicrosecond);

/** One trained model shared by the prediction benchmarks. */
const core::CeerModel &
sharedModel()
{
    static const core::CeerModel model = [] {
        profile::CollectOptions options;
        options.iterations = 30;
        return core::trainCeer(profile::collectProfiles(
            models::trainingSetNames(), options));
    }();
    return model;
}

void
BM_PredictIteration(benchmark::State &state)
{
    const core::CeerPredictor predictor(sharedModel());
    const graph::Graph g = models::buildModel("resnet_101", 32);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            predictor.predictIterationUs(g, hw::GpuModel::V100, 4));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(g.size()));
}
BENCHMARK(BM_PredictIteration)->Unit(benchmark::kMicrosecond);

void
BM_RecommendOver16Instances(benchmark::State &state)
{
    const core::CeerPredictor predictor(sharedModel());
    const graph::Graph g = models::buildModel("inception_v3", 32);
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();
    core::WorkloadSpec workload{&g, 1'200'000, 32};
    for (auto _ : state) {
        const core::Recommendation recommendation = core::recommend(
            predictor, workload, catalog.instances(),
            core::Objective::MinCost);
        benchmark::DoNotOptimize(recommendation.bestIndex);
    }
}
BENCHMARK(BM_RecommendOver16Instances)->Unit(benchmark::kMillisecond);

void
BM_MemoryEstimate(benchmark::State &state)
{
    const graph::Graph g = models::buildResNetV2(101, 32);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            hw::estimateTrainingMemory(g).totalBytes());
    }
}
BENCHMARK(BM_MemoryEstimate)->Unit(benchmark::kMicrosecond);

void
BM_TraceIteration(benchmark::State &state)
{
    const graph::Graph g = models::buildInceptionV1(32);
    sim::SimConfig config;
    for (auto _ : state) {
        const sim::IterationTrace trace = sim::traceIteration(g, config);
        benchmark::DoNotOptimize(trace.events().size());
    }
}
BENCHMARK(BM_TraceIteration)->Unit(benchmark::kMicrosecond);

void
BM_ProfileCsvRoundTrip(benchmark::State &state)
{
    profile::CollectOptions options;
    options.iterations = 10;
    options.multiGpuRuns = false;
    const profile::ProfileDataset dataset =
        profile::collectProfiles({"inception_v1"}, options);
    for (auto _ : state) {
        std::stringstream buffer;
        dataset.saveCsv(buffer);
        const profile::ProfileDataset loaded =
            profile::ProfileDataset::loadCsv(buffer);
        benchmark::DoNotOptimize(loaded.ops().size());
    }
}
BENCHMARK(BM_ProfileCsvRoundTrip)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
