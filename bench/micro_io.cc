/**
 * @file
 * I/O-path load-time microbenchmark: CSV parse vs CBF.
 *
 * Writes one profile dataset and one fleet-scale instance catalog to
 * disk in both dialects, then times the three load paths the loaders
 * expose — CSV text parse, streaming CBF read (read() into an owned
 * buffer), and zero-copy CBF mmap — reporting the best-of-N load time
 * for each. The CSV files are canonical (one load→save trip), so all
 * three paths must decode bit-identical containers; the bench asserts
 * that by comparing re-serialized CBF bytes and byte-identical trained
 * models downstream. Finishes with a recommend() sweep over the
 * synthetic fleet (>= 5000 instances by default) with the usual
 * thread-identity checks. Writes BENCH_io.json; docs/performance.md
 * and docs/file_formats.md quote these numbers.
 */

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "cloud/instances.h"
#include "core/predictor.h"
#include "core/recommender.h"
#include "core/trainer.h"
#include "io/cbf.h"
#include "models/model_zoo.h"
#include "profile/profiler.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace ceer;
using Clock = std::chrono::steady_clock;

/** Bit pattern of a double (== would conflate +0.0 and -0.0). */
std::uint64_t
bits(double x)
{
    std::uint64_t u;
    std::memcpy(&u, &x, sizeof u);
    return u;
}

/** Field-by-field bit comparison of two candidate evaluations. */
bool
evaluationsIdentical(const core::CandidateEvaluation &a,
                     const core::CandidateEvaluation &b)
{
    return a.instance.name == b.instance.name &&
           a.prediction.iterations == b.prediction.iterations &&
           bits(a.prediction.iterationUs) ==
               bits(b.prediction.iterationUs) &&
           bits(a.prediction.hours) == bits(b.prediction.hours) &&
           bits(a.costUsd) == bits(b.costUsd) &&
           a.withinHourly == b.withinHourly &&
           a.withinTotal == b.withinTotal &&
           a.fitsMemory == b.fitsMemory;
}

/** Best (minimum) wall time in microseconds over @p reps runs. */
template <typename Body>
double
bestOfUs(int reps, const Body &body)
{
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < reps; ++i) {
        const auto start = Clock::now();
        body();
        best = std::min(
            best, std::chrono::duration<double, std::micro>(Clock::now() -
                                                            start)
                      .count());
    }
    return best;
}

std::int64_t
fileBytes(const std::string &path)
{
    return static_cast<std::int64_t>(std::filesystem::file_size(path));
}

/** Dataset contents as CBF bytes: the bit-identity fingerprint. */
std::string
datasetFingerprint(const profile::ProfileDataset &dataset)
{
    std::ostringstream out;
    dataset.saveCbf(out);
    return out.str();
}

std::string
catalogFingerprint(const cloud::InstanceCatalog &catalog)
{
    std::ostringstream out;
    catalog.saveCbf(out);
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    util::Flags flags;
    flags.defineString("model", "resnet_101",
                       "CNN for the recommender workload");
    flags.defineInt("train-iters", 200,
                    "profiling iterations for the dataset fixture "
                    "(200 matches the bench suite's default dataset)");
    flags.defineInt("load-iters", 30, "timed repetitions per load path");
    flags.defineInt("fleet", 6000,
                    "synthetic fleet size for the catalog loads and "
                    "the recommend() sweep");
    flags.defineInt("threads", 0,
                    "max swept recommender thread count (0 = hardware)");
    flags.defineString("scratch", "build/io-scratch",
                       "directory for the on-disk fixtures");
    flags.defineString("out", "BENCH_io.json",
                       "machine-readable results ('' disables)");
    flags.defineString("metrics-out", "",
                       "write a metrics JSON snapshot here (enables "
                       "observability for the run)");
    flags.parse(argc, argv);
    bench::setMetricsOut(flags.getString("metrics-out"));

    const std::string model_name = flags.getString("model");
    const int load_iters =
        std::max(1, static_cast<int>(flags.getInt("load-iters")));
    const std::size_t fleet_size =
        static_cast<std::size_t>(std::max<std::int64_t>(
            1, flags.getInt("fleet")));
    const unsigned hardware = std::thread::hardware_concurrency();
    const int max_threads =
        flags.getInt("threads") > 0
            ? static_cast<int>(flags.getInt("threads"))
            : static_cast<int>(hardware ? hardware : 1);
    const std::string scratch = flags.getString("scratch");
    std::filesystem::create_directories(scratch);

    util::printBanner(std::cout,
                      "micro_io: CSV parse vs CBF stream vs CBF mmap (" +
                          std::to_string(load_iters) + " reps/path)");
    std::cout << "hardware threads: " << hardware << "\n";

    // --- Fixtures: one profile dataset, one fleet catalog, both
    // dialects. The CSV is canonical (written from a dataset that was
    // itself parsed from CSV), so the text and binary files decode to
    // bit-identical containers and the three load paths must agree.
    profile::CollectOptions collect;
    collect.iterations = static_cast<int>(flags.getInt("train-iters"));
    collect.multiGpuRuns = true;
    const profile::ProfileDataset collected =
        profile::collectProfiles(models::trainingSetNames(), collect);
    std::ostringstream first_csv;
    collected.saveCsv(first_csv);
    std::istringstream first_csv_in(first_csv.str());
    const profile::ProfileDataset canonical =
        profile::ProfileDataset::loadCsv(first_csv_in);

    const std::string profile_csv = scratch + "/profiles.csv";
    const std::string profile_cbf = scratch + "/profiles.cbf";
    {
        std::ofstream csv(profile_csv);
        canonical.saveCsv(csv);
        std::ofstream cbf(profile_cbf, std::ios::binary);
        canonical.saveCbf(cbf);
        if (!csv.good() || !cbf.good())
            util::fatal("cannot write fixtures under " + scratch);
    }

    const cloud::InstanceCatalog fleet =
        cloud::InstanceCatalog::syntheticFleet(fleet_size);
    const std::string fleet_csv = scratch + "/fleet.csv";
    const std::string fleet_cbf = scratch + "/fleet.cbf";
    {
        std::ofstream csv(fleet_csv);
        fleet.saveCsv(csv);
        std::ofstream cbf(fleet_cbf, std::ios::binary);
        fleet.saveCbf(cbf);
        if (!csv.good() || !cbf.good())
            util::fatal("cannot write fixtures under " + scratch);
    }

    // --- Timed profile-dataset loads. tryLoadFile sniffs by magic and
    // takes the mmap path for CBF, so the "csv" and "mmap" rows time
    // the exact entry points every tool and the profile cache use; the
    // "stream" row times the checked read()-into-buffer fallback.
    const auto load_profile_file = [](const std::string &path) {
        profile::ProfileDataset dataset;
        std::string error;
        if (!profile::ProfileDataset::tryLoadFile(path, &dataset, &error))
            util::fatal(error);
        return dataset;
    };
    const auto load_profile_stream = [&]() {
        io::CbfFile file;
        std::string error;
        profile::ProfileDataset dataset;
        if (!io::CbfFile::tryLoad(profile_cbf, &file, &error) ||
            !profile::ProfileDataset::tryLoadCbf(file, &dataset, &error))
            util::fatal(error);
        return dataset;
    };
    const double profile_csv_us =
        bestOfUs(load_iters, [&] { load_profile_file(profile_csv); });
    const double profile_stream_us =
        bestOfUs(load_iters, [&] { load_profile_stream(); });
    const double profile_mmap_us =
        bestOfUs(load_iters, [&] { load_profile_file(profile_cbf); });

    // Bit-identity across the three paths, fingerprinted as CBF bytes.
    const profile::ProfileDataset from_csv =
        load_profile_file(profile_csv);
    const profile::ProfileDataset from_stream = load_profile_stream();
    const profile::ProfileDataset from_mmap =
        load_profile_file(profile_cbf);
    const std::string fingerprint = datasetFingerprint(from_csv);
    bool identity_ok =
        fingerprint == datasetFingerprint(from_stream) &&
        fingerprint == datasetFingerprint(from_mmap);
    if (!identity_ok)
        std::cerr << "FAIL: CSV/stream/mmap datasets are not "
                     "bit-identical\n";

    // Downstream identity: models trained from the CSV-parsed and the
    // mmap-adopted datasets must serialize byte-identically (which
    // pins every prediction made from them).
    const core::CeerModel model_from_csv = core::trainCeer(from_csv);
    const core::CeerModel model_from_mmap = core::trainCeer(from_mmap);
    std::ostringstream model_a, model_b;
    model_from_csv.save(model_a);
    model_from_mmap.save(model_b);
    const bool downstream_ok = model_a.str() == model_b.str();
    if (!downstream_ok)
        std::cerr << "FAIL: models trained from CSV- and mmap-loaded "
                     "datasets differ\n";
    identity_ok &= downstream_ok;

    // --- Timed fleet-catalog loads (same three paths). ---
    const auto load_catalog_file = [](const std::string &path) {
        cloud::InstanceCatalog catalog;
        std::string error;
        if (!cloud::InstanceCatalog::tryLoadFile(path, &catalog, &error))
            util::fatal(error);
        return catalog;
    };
    const auto load_catalog_stream = [&]() {
        io::CbfFile file;
        std::string error;
        cloud::InstanceCatalog catalog;
        if (!io::CbfFile::tryLoad(fleet_cbf, &file, &error) ||
            !cloud::InstanceCatalog::tryLoadCbf(file, &catalog, &error))
            util::fatal(error);
        return catalog;
    };
    const double fleet_csv_us =
        bestOfUs(load_iters, [&] { load_catalog_file(fleet_csv); });
    const double fleet_stream_us =
        bestOfUs(load_iters, [&] { load_catalog_stream(); });
    const double fleet_mmap_us =
        bestOfUs(load_iters, [&] { load_catalog_file(fleet_cbf); });

    const cloud::InstanceCatalog fleet_from_csv =
        load_catalog_file(fleet_csv);
    const cloud::InstanceCatalog fleet_from_mmap =
        load_catalog_file(fleet_cbf);
    const bool fleet_identity =
        catalogFingerprint(fleet_from_csv) ==
            catalogFingerprint(fleet_from_mmap) &&
        catalogFingerprint(fleet_from_csv) ==
            catalogFingerprint(load_catalog_stream());
    if (!fleet_identity)
        std::cerr << "FAIL: CSV/stream/mmap catalogs are not "
                     "bit-identical\n";
    identity_ok &= fleet_identity;

    const double profile_stream_speedup =
        profile_csv_us / profile_stream_us;
    const double profile_mmap_speedup = profile_csv_us / profile_mmap_us;
    const double fleet_stream_speedup = fleet_csv_us / fleet_stream_us;
    const double fleet_mmap_speedup = fleet_csv_us / fleet_mmap_us;

    util::TablePrinter load_table(
        {"fixture", "path", "best load (us)", "speedup vs CSV"});
    load_table.addRow({"profiles", "csv parse",
                       util::format("%.1f", profile_csv_us), "1.00x"});
    load_table.addRow({"profiles", "cbf stream",
                       util::format("%.1f", profile_stream_us),
                       util::format("%.2fx", profile_stream_speedup)});
    load_table.addRow({"profiles", "cbf mmap",
                       util::format("%.1f", profile_mmap_us),
                       util::format("%.2fx", profile_mmap_speedup)});
    load_table.addRow({"fleet", "csv parse",
                       util::format("%.1f", fleet_csv_us), "1.00x"});
    load_table.addRow({"fleet", "cbf stream",
                       util::format("%.1f", fleet_stream_us),
                       util::format("%.2fx", fleet_stream_speedup)});
    load_table.addRow({"fleet", "cbf mmap",
                       util::format("%.1f", fleet_mmap_us),
                       util::format("%.2fx", fleet_mmap_speedup)});
    load_table.print(std::cout);
    std::cout << util::format(
        "profiles: %lld op rows, %lld iter rows, %lld B csv / %lld B "
        "cbf; fleet: %lld instances, %lld B csv / %lld B cbf\n",
        (long long)canonical.ops().size(),
        (long long)canonical.iterations().size(),
        (long long)fileBytes(profile_csv),
        (long long)fileBytes(profile_cbf),
        (long long)fleet.instances().size(),
        (long long)fileBytes(fleet_csv), (long long)fileBytes(fleet_cbf));

    // --- Fleet-scale recommend() sweep over the mmap-loaded catalog,
    // with the same thread-identity contract micro_ceer enforces.
    const core::CeerPredictor predictor(model_from_mmap);
    const graph::Graph g = models::buildModel(model_name, 32);
    core::WorkloadSpec workload{&g, bench::kImageNetSamples, 32};
    const std::vector<cloud::GpuInstance> &candidates =
        fleet_from_mmap.instances();

    std::vector<int> sweep{1, 2, 4};
    for (int t = 8; t <= max_threads; t *= 2)
        sweep.push_back(t);

    struct Result
    {
        int threads;
        double wallSeconds;
        double speedup;
        bool identical;
        bool belowSerial;
    };
    // On a single-core host every multi-thread point measures
    // scheduling, not speedup: identity is still checked, but the
    // below-serial flag is suppressed and the JSON says so.
    const bool scaling_meaningful = hardware >= 2;
    std::vector<Result> results;
    core::Recommendation reference;
    double serial_wall = 0.0;
    bool sweep_identical = true;

    util::TablePrinter sweep_table(
        {"threads", "wall (s)", "candidates/sec", "speedup",
         "identical"});
    for (int threads : sweep) {
        const auto start = Clock::now();
        const core::Recommendation recommendation = core::recommend(
            predictor, workload, candidates, core::Objective::MinCost,
            core::Constraints{}, threads);
        const double wall =
            std::chrono::duration<double>(Clock::now() - start).count();
        if (threads == 1) {
            reference = recommendation;
            serial_wall = wall;
        }
        Result r;
        r.threads = threads;
        r.wallSeconds = wall;
        r.speedup = serial_wall / wall;
        r.identical =
            recommendation.bestIndex == reference.bestIndex &&
            recommendation.evaluations.size() ==
                reference.evaluations.size();
        if (r.identical) {
            for (std::size_t i = 0; i < reference.evaluations.size();
                 ++i) {
                if (!evaluationsIdentical(reference.evaluations[i],
                                          recommendation
                                              .evaluations[i])) {
                    r.identical = false;
                    break;
                }
            }
        }
        r.belowSerial =
            scaling_meaningful && threads > 1 && r.speedup < 1.0;
        sweep_identical &= r.identical;
        results.push_back(r);
        sweep_table.addRow(
            {std::to_string(threads), util::format("%.3f", wall),
             util::format("%.1f", candidates.size() / wall),
             util::format("%.2fx", r.speedup),
             r.identical ? "yes" : "NO"});
        if (!r.identical) {
            std::cerr << "FAIL: recommendation at " << threads
                      << " threads differs from the serial sweep\n";
        }
    }
    sweep_table.print(std::cout);
    if (!scaling_meaningful) {
        std::cout << "note: single hardware thread; scaling assertions "
                     "skipped (identity still enforced)\n";
    }
    identity_ok &= sweep_identical;

    int below_serial = 0;
    for (const Result &r : results)
        below_serial += r.belowSerial ? 1 : 0;
    bench::JsonObject doc;
    doc.str("benchmark", "io_load_throughput")
        .str("model", model_name)
        .num("load_iters", load_iters);
    bench::addScalingFields(doc, hardware, scaling_meaningful);
    doc.num("profile_op_rows",
            static_cast<std::int64_t>(canonical.ops().size()))
        .num("profile_iter_rows",
             static_cast<std::int64_t>(canonical.iterations().size()))
        .num("profile_csv_bytes", fileBytes(profile_csv))
        .num("profile_cbf_bytes", fileBytes(profile_cbf))
        .num("profile_csv_parse_us", profile_csv_us, "%.1f")
        .num("profile_cbf_stream_us", profile_stream_us, "%.1f")
        .num("profile_cbf_mmap_us", profile_mmap_us, "%.1f")
        .num("profile_stream_speedup_vs_csv", profile_stream_speedup,
             "%.2f")
        .num("profile_mmap_speedup_vs_csv", profile_mmap_speedup, "%.2f")
        // Headline number: zero-copy mmap vs CSV text parse on the
        // profile dataset (the file every bench binary loads).
        .num("mmap_speedup_vs_csv", profile_mmap_speedup, "%.2f")
        .num("fleet_instances",
             static_cast<std::int64_t>(fleet.instances().size()))
        .num("fleet_csv_bytes", fileBytes(fleet_csv))
        .num("fleet_cbf_bytes", fileBytes(fleet_cbf))
        .num("fleet_csv_parse_us", fleet_csv_us, "%.1f")
        .num("fleet_cbf_stream_us", fleet_stream_us, "%.1f")
        .num("fleet_cbf_mmap_us", fleet_mmap_us, "%.1f")
        .num("fleet_stream_speedup_vs_csv", fleet_stream_speedup, "%.2f")
        .num("fleet_mmap_speedup_vs_csv", fleet_mmap_speedup, "%.2f")
        .boolean("identity_ok", identity_ok)
        .boolean("recommender_identity_ok", sweep_identical)
        .num("below_serial_measurements", below_serial);
    std::vector<bench::JsonObject> rows;
    for (const Result &r : results) {
        bench::JsonObject row;
        row.num("threads", r.threads)
            .num("wall_s", r.wallSeconds, "%.6f")
            .num("speedup", r.speedup, "%.4f")
            .boolean("identical", r.identical)
            .boolean("below_serial", r.belowSerial);
        rows.push_back(std::move(row));
    }
    doc.array("recommender_sweep", std::move(rows));
    if (!bench::writeBenchJson(flags.getString("out"), doc))
        return 1;
    bench::flushBenchMetrics();
    return identity_ok ? 0 : 1;
}
