/**
 * @file
 * Figure 3: rental cost incurred while running each heavy GPU op type
 * on the basic 1-GPU instance of each family — mean compute time times
 * the hourly price normalized to microseconds (divided by 3.6e9).
 *
 * Paper claims checked: G4 is the cheapest for 16 of the 20 ops and P3
 * for the remaining 4 (the pooling ops); for pooling ops P3 is ~20%
 * cheaper than G4 (peak ~31%); for G4's ops the average saving over P3
 * is ~16% (peak ~29%, FusedBatchNormGradV3); P3's 10x time advantage
 * over P2 shrinks to ~3x in cost.
 */

#include "bench/common.h"

#include <map>

#include "cloud/instances.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;
    using graph::OpType;
    using hw::GpuModel;

    const bench::BenchConfig config = bench::parseBenchFlags(argc, argv);
    util::printBanner(
        std::cout,
        "Figure 3: operation-level compute costs (micro-USD, 1-GPU "
        "instance prices)");
    const profile::ProfileDataset dataset =
        bench::collectTrainingProfiles(config, /*multiGpu=*/false);
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();

    std::map<GpuModel, double> price_per_us;
    for (GpuModel gpu : hw::allGpuModels())
        price_per_us[gpu] = catalog.find(gpu, 1).hourlyUsd / 3.6e9;

    const std::set<OpType> pooling = {
        OpType::MaxPool, OpType::MaxPoolGrad, OpType::AvgPool,
        OpType::AvgPoolGrad};

    util::TablePrinter table({"operation", "P3/V100", "P2/K80",
                              "G4/T4", "G3/M60", "cheapest"});
    int g4_wins = 0, p3_wins = 0, counted = 0;
    int p3_wins_pooling = 0;
    double pooling_saving = 0.0, g4_saving = 0.0;
    double g4_saving_peak = 0.0;
    OpType g4_peak_op = OpType::Conv2D;
    double cost_ratio_p2 = 0.0;
    for (OpType op : bench::paperHeavyOps()) {
        std::map<GpuModel, double> cost;
        for (GpuModel gpu : hw::allGpuModels()) {
            cost[gpu] =
                dataset.meanTimeUs(gpu, op) * price_per_us[gpu] * 1e6;
        }
        if (cost[GpuModel::V100] <= 0.0)
            continue;
        ++counted;
        GpuModel winner = GpuModel::V100;
        for (GpuModel gpu : hw::allGpuModels())
            if (cost[gpu] < cost[winner])
                winner = gpu;
        table.addRow({graph::opTypeName(op),
                      util::format("%.3f", cost[GpuModel::V100]),
                      util::format("%.3f", cost[GpuModel::K80]),
                      util::format("%.3f", cost[GpuModel::T4]),
                      util::format("%.3f", cost[GpuModel::M60]),
                      hw::gpuModelName(winner)});
        cost_ratio_p2 += cost[GpuModel::K80] / cost[GpuModel::V100];
        if (winner == GpuModel::T4) {
            ++g4_wins;
            const double saving =
                1.0 - cost[GpuModel::T4] / cost[GpuModel::V100];
            g4_saving += saving;
            if (saving > g4_saving_peak) {
                g4_saving_peak = saving;
                g4_peak_op = op;
            }
        } else if (winner == GpuModel::V100) {
            ++p3_wins;
        }
        if (pooling.count(op)) {
            p3_wins_pooling += winner == GpuModel::V100;
            pooling_saving +=
                1.0 - cost[GpuModel::V100] / cost[GpuModel::T4];
        }
    }
    table.print(std::cout);
    std::cout << "peak G4-vs-P3 saving: "
              << util::format("%.0f%%", 100.0 * g4_saving_peak)
              << " on " << graph::opTypeName(g4_peak_op)
              << " (paper: ~29% on FusedBatchNormGradV3)\n\n";

    bench::CheckSummary summary;
    summary.check("ops where G4 is cheapest (paper: 16/20)",
                  g4_wins, 13, 17);
    summary.check("ops where P3 is cheapest (paper: 4/20)", p3_wins, 3,
                  7);
    summary.check("pooling ops won by P3 (paper: 4/4)",
                  p3_wins_pooling, 3, 4);
    summary.check("mean P3 saving on pooling ops (paper ~20%)",
                  pooling_saving / 4.0, 0.10, 0.35);
    summary.check("mean G4 saving on its ops (paper ~16%)",
                  g4_wins ? g4_saving / g4_wins : 0.0, 0.08, 0.30);
    summary.check("mean cost ratio P2/P3 (paper ~3x)",
                  cost_ratio_p2 / counted, 2.2, 4.2);
    return summary.finish();
}
