/**
 * @file
 * Ablation (Sec. IV-A): dropping the communication-overhead term
 * S_GPU(CNN) from Eq. 2. The paper reports 5-20% extra error at k = 1
 * (almost 30% for AlexNet) and larger errors for multi-GPU instances.
 */

#include "bench/common.h"

#include <cmath>

#include "baselines/baselines.h"
#include "models/model_zoo.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;
    using hw::GpuModel;

    const bench::BenchConfig config = bench::parseBenchFlags(argc, argv);
    util::printBanner(std::cout,
                      "Ablation: prediction without the communication "
                      "overhead S_GPU (Eq. 1 instead of Eq. 2)");
    const bench::TrainedCeer trained =
        bench::trainOnPaperTrainingSet(config);
    const core::CeerPredictor predictor(trained.model);

    util::TablePrinter table({"CNN", "GPUs", "mean full err",
                              "mean no-comm err"});
    double alexnet_k1_error = 0.0;
    double k1_error_min = 1.0, k1_error_max = 0.0;
    double k4_error_sum = 0.0;
    int k4_points = 0;
    std::uint64_t salt = 700;
    for (const std::string &name : models::testSetNames()) {
        for (int k : {1, 4}) {
            const graph::Graph g =
                models::buildModel(name, config.batch);
            double full_sum = 0.0, ablated_sum = 0.0;
            for (GpuModel gpu : hw::allGpuModels()) {
                const double observed = bench::observedIterationUs(
                    g, gpu, k, config, ++salt);
                const double full =
                    predictor.predictIterationUs(g, gpu, k);
                const double ablated = predictor.predictIterationUs(
                    g, gpu, k, baselines::noCommOptions());
                full_sum += std::abs(full / observed - 1.0);
                ablated_sum += std::abs(ablated / observed - 1.0);
            }
            const double full_mean = full_sum / 4.0;
            const double ablated_mean = ablated_sum / 4.0;
            table.addRow({name, std::to_string(k),
                          util::format("%.1f%%", 100.0 * full_mean),
                          util::format("%.1f%%", 100.0 * ablated_mean)});
            if (k == 1) {
                k1_error_min = std::min(k1_error_min, ablated_mean);
                k1_error_max = std::max(k1_error_max, ablated_mean);
                if (name == "alexnet")
                    alexnet_k1_error = ablated_mean;
            } else {
                k4_error_sum += ablated_mean;
                ++k4_points;
            }
        }
    }
    table.print(std::cout);

    bench::CheckSummary summary;
    summary.check("no-comm error at k=1, smallest CNN "
                  "(paper: >= ~5%)",
                  k1_error_min, 0.02, 1.0);
    summary.check("no-comm error at k=1, largest CNN "
                  "(paper: up to ~30%, AlexNet)",
                  k1_error_max, 0.15, 0.45);
    summary.check("AlexNet is the worst k=1 case (paper: yes)",
                  alexnet_k1_error >= k1_error_max - 1e-9 ? 1.0 : 0.0,
                  1.0, 1.0);
    summary.check("no-comm error at k=4 is large "
                  "(comm dominates multi-GPU)",
                  k4_error_sum / k4_points, 0.20, 1.0);
    return summary.finish();
}
