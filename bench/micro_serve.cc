/**
 * @file
 * ceerd serving-path microbenchmark (emits BENCH_serve.json).
 *
 * Boots in-process serve::Servers on ephemeral ports, replays
 * zoo-wide recommend traffic through serve::runLoadgen at a ladder of
 * target rates (finishing with an unthrottled closed-loop point), and
 * reports throughput plus p50/p99/p999 latency per point. On
 * multi-core hosts the ladder repeats per reactor count so the
 * multi-reactor scaling shows up in the JSON.
 *
 * Three correctness gates ride along:
 *  - byte identity: for every model in the mix and every
 *    (reactors, sweep threads) combination, the raw Response payload
 *    bytes from the server must equal the locally encoded result of
 *    an in-process recommend() on the same model, catalog and
 *    constraints — including across a hot reload.
 *  - hot reload: reloading the identical model mid-run must bump the
 *    engine generation and keep the reply bytes unchanged.
 *  - allocation budget: a warm recommend request against a
 *    single-reactor inline server must perform at most --alloc-budget
 *    heap allocations, counted by a replaced operator new. This pins
 *    the zero-allocation steady state the server documents.
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "cloud/instances.h"
#include "core/recommender.h"
#include "core/trainer.h"
#include "io/cbf.h"
#include "models/model_zoo.h"
#include "obs/metrics.h"
#include "profile/profiler.h"
#include "serve/client.h"
#include "serve/loadgen.h"
#include "serve/net.h"
#include "serve/server.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

// ---------------------------------------------------------------------
// Allocation-counting operator new. Global and process-wide: while
// g_count_allocs is set, every path through the replaceable operator
// new bumps the counter. The measurement below keeps every other
// thread idle, so the count is the serving path's. Sanitizer builds
// keep the default operators (the sanitizers interpose their own).
// ---------------------------------------------------------------------

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_count{0};

void *
countedAlloc(std::size_t size)
{
    if (g_count_allocs.load(std::memory_order_relaxed))
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size ? size : 1);
}
} // namespace

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define CEER_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define CEER_ALLOC_HOOK 0
#else
#define CEER_ALLOC_HOOK 1
#endif
#else
#define CEER_ALLOC_HOOK 1
#endif

#if CEER_ALLOC_HOOK
void *
operator new(std::size_t size)
{
    void *p = countedAlloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    void *p = countedAlloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
#endif // CEER_ALLOC_HOOK

namespace {

using namespace ceer;

/** One throughput/latency point of the rate ladder. */
struct Point
{
    int reactors = 1;
    double targetQps = 0.0;
    serve::LoadgenResult result;
};

std::vector<std::string>
parseModelList(const std::string &csv)
{
    std::vector<std::string> names = models::allModelNames();
    if (csv.empty())
        return names;
    names.clear();
    for (const auto &name : util::split(csv, ','))
        if (!name.empty())
            names.push_back(util::trim(name));
    return names;
}

/**
 * Byte-identity + hot-reload gates against one server configuration:
 * every reply must equal @p expected (the locally encoded in-process
 * recommend() results), before AND after a hot reload that must bump
 * the generation to 2.
 */
bool
runIdentityAndReloadGates(serve::Server &server,
                          const std::vector<serve::RecommendRequest> &mix,
                          const std::vector<std::string> &expected,
                          const std::string &reload_path,
                          const std::string &label)
{
    bool ok = true;
    serve::ServeClient client;
    std::string error;
    if (!client.tryConnect("127.0.0.1", server.port(), 30000,
                           &error)) {
        std::cerr << "micro_serve: " << label << ": " << error << "\n";
        return false;
    }
    for (std::size_t i = 0; i < mix.size() && ok; ++i) {
        serve::RecommendResponse response;
        std::string raw;
        const serve::CallOutcome outcome =
            client.recommend(mix[i], &response, &raw);
        if (!outcome.ok) {
            std::cerr << "micro_serve: " << label << ": recommend("
                      << mix[i].model
                      << ") failed: " << outcome.errorMessage << "\n";
            ok = false;
        } else if (raw != expected[i]) {
            std::cerr << "micro_serve: " << label << ": reply for "
                      << mix[i].model
                      << " differs from in-process recommend()\n";
            ok = false;
        }
    }
    if (ok) {
        std::uint64_t generation = 0;
        const serve::CallOutcome reload_outcome =
            client.reload(reload_path, &generation);
        if (!reload_outcome.ok || generation != 2) {
            std::cerr << "micro_serve: " << label << ": reload failed: "
                      << reload_outcome.errorMessage << "\n";
            ok = false;
        }
    }
    for (std::size_t i = 0; i < mix.size() && ok; ++i) {
        serve::RecommendResponse response;
        std::string raw;
        if (!client.recommend(mix[i], &response, &raw).ok ||
            raw != expected[i]) {
            std::cerr << "micro_serve: " << label
                      << ": post-reload reply for " << mix[i].model
                      << " changed\n";
            ok = false;
        }
    }
    client.close();
    return ok;
}

/** Outcome of the allocation-budget measurement. */
struct AllocGate
{
    bool hookAvailable = false;
    double allocsPerRequest = -1.0;
    bool ok = true; ///< Vacuously true when the hook is unavailable.
};

/**
 * Counts heap allocations per warm recommend request against
 * @p server (which must run reactors=1/threads=1, the inline path).
 * The client side of this loop is allocation-free by construction —
 * a pre-encoded frame, recvAll into reused buffers — so the counter
 * sees the serving path plus nothing.
 */
AllocGate
measureAllocBudget(serve::Server &server,
                   const serve::RecommendRequest &request,
                   double budget)
{
    AllocGate gate;
    gate.hookAvailable = CEER_ALLOC_HOOK != 0;
    if (!gate.hookAvailable)
        return gate;

    // Keep observability off for the measurement: metric handles and
    // span names are allowed to allocate when tracing is on.
    obs::ScopedEnable obs_off(false);

    std::string error;
    const int fd =
        serve::connectTcp("127.0.0.1", server.port(), &error);
    if (fd < 0) {
        std::cerr << "micro_serve: alloc gate: " << error << "\n";
        gate.ok = false;
        return gate;
    }
    const std::string frame = serve::buildFrame(
        serve::FrameType::Request,
        serve::encodeRecommendRequest(request));
    std::string payload;
    payload.reserve(1 << 20);

    const auto roundtrip = [&]() -> bool {
        if (!serve::sendAll(fd, frame.data(), frame.size(), &error))
            return false;
        char header_buf[serve::kFrameHeaderBytes];
        if (!serve::recvAll(fd, header_buf, sizeof header_buf, &error))
            return false;
        serve::FrameHeader header;
        if (!serve::decodeFrameHeader(header_buf, &header, &error))
            return false;
        if (header.type != serve::FrameType::Response)
            return false;
        payload.resize(header.payloadBytes);
        return header.payloadBytes == 0 ||
               serve::recvAll(fd, &payload[0], header.payloadBytes,
                              &error);
    };

    constexpr int kWarm = 64;
    constexpr int kMeasured = 256;
    bool ok = true;
    for (int i = 0; i < kWarm && ok; ++i)
        ok = roundtrip();
    if (ok) {
        g_alloc_count.store(0, std::memory_order_relaxed);
        g_count_allocs.store(true, std::memory_order_relaxed);
        for (int i = 0; i < kMeasured && ok; ++i)
            ok = roundtrip();
        g_count_allocs.store(false, std::memory_order_relaxed);
    }
    serve::closeFd(fd);
    if (!ok) {
        std::cerr << "micro_serve: alloc gate: request loop failed: "
                  << error << "\n";
        gate.ok = false;
        return gate;
    }
    gate.allocsPerRequest =
        static_cast<double>(
            g_alloc_count.load(std::memory_order_relaxed)) /
        kMeasured;
    gate.ok = gate.allocsPerRequest <= budget;
    return gate;
}

} // namespace

int
main(int argc, char **argv)
{
    util::Flags flags;
    flags.defineInt("train-iters", 12,
                    "profiling iterations for the in-process model");
    flags.defineDouble("seconds", 1.5, "seconds per rate point");
    flags.defineInt("connections", 4, "loadgen connections");
    flags.defineString("models", "",
                       "comma-separated request mix (default: the "
                       "full 12-CNN zoo)");
    flags.defineString("qps-targets", "50,200,0",
                       "comma-separated target QPS ladder (0 = "
                       "unthrottled closed loop)");
    flags.defineDouble("alloc-budget", 32.0,
                       "max heap allocations per warm recommend "
                       "request");
    flags.defineString("out", "BENCH_serve.json",
                       "machine-readable results ('' disables)");
    flags.defineString("metrics-out", "",
                       "write a metrics JSON snapshot here (enables "
                       "observability for the run)");
    flags.parse(argc, argv);
    bench::setMetricsOut(flags.getString("metrics-out"));

    const unsigned hardware = std::thread::hardware_concurrency();
    const bool scaling_meaningful = hardware >= 2;
    util::printBanner(std::cout,
                      "micro_serve: ceerd serving path "
                      "(loadgen over loopback TCP)");
    std::cout << "hardware threads: " << hardware << "\n";

    // A cheap but real model: two CNNs profiled briefly, then the
    // standard trainer. Serving latency does not depend on the fit
    // quality, only on the plan-evaluation shape.
    profile::CollectOptions collect;
    collect.iterations = static_cast<int>(flags.getInt("train-iters"));
    const profile::ProfileDataset dataset = profile::collectProfiles(
        {"vgg_11", "inception_v1"}, collect);
    core::CeerModel model = core::trainCeer(dataset);
    const core::CeerPredictor predictor(model);
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();

    const std::vector<std::string> names =
        parseModelList(flags.getString("models"));
    std::vector<serve::RecommendRequest> mix;
    for (const std::string &name : names) {
        serve::RecommendRequest request;
        request.model = name;
        mix.push_back(std::move(request));
    }

    // Expected reply bytes: the locally encoded in-process
    // recommend() result per mix entry, computed once and compared
    // against every server configuration.
    std::vector<std::string> expected;
    for (const serve::RecommendRequest &request : mix) {
        const graph::Graph g =
            models::buildModel(request.model, request.batch);
        core::WorkloadSpec workload{&g, request.datasetSamples,
                                    request.batch};
        core::Constraints constraints;
        constraints.hourlyBudgetUsd = request.hourlyBudgetUsd;
        constraints.hourlyToleranceUsd = request.hourlyToleranceUsd;
        constraints.totalBudgetUsd = request.totalBudgetUsd;
        constraints.enforceGpuMemory = request.enforceGpuMemory;
        expected.push_back(serve::encodeRecommendResponse(
            serve::responseFromRecommendation(core::recommend(
                predictor, workload, catalog.instances(),
                core::objectiveFunction(core::Objective::MinCost),
                constraints))));
    }

    const std::string reload_path =
        "micro_serve_reload_model.tmp.txt";
    {
        std::ofstream out(reload_path);
        model.save(out);
    }

    // --- Identity + reload gate grid ----------------------------------
    // Every (reactors, sweep threads) combination must produce the
    // same bytes, before and after a hot reload. Reactor/thread counts
    // above 1 still run on a 1-core host — correctness does not need
    // spare cores, only the throughput rows do.
    bool identity_ok = true;
    std::string error;
    for (const int reactors : {1, 2}) {
        for (const int threads : {1, 2}) {
            serve::ServerOptions options;
            options.port = 0;
            options.reactors = reactors;
            options.sweepThreads = threads;
            serve::Server server(model, catalog, options);
            if (!server.tryStart(&error)) {
                std::cerr << "micro_serve: " << error << "\n";
                return 1;
            }
            const std::string label = util::format(
                "reactors=%d threads=%d%s", reactors, threads,
                server.usingReusePort() ? "" : " (single listener)");
            if (!runIdentityAndReloadGates(server, mix, expected,
                                           reload_path, label))
                identity_ok = false;
            server.stop();
        }
    }
    std::remove(reload_path.c_str());
    std::cout << (identity_ok ? "[PASS]" : "[FAIL]")
              << " replies byte-identical to in-process recommend() "
                 "across every reactor/thread combination, including "
                 "across hot reload\n";

    // --- Allocation-budget gate ---------------------------------------
    const double alloc_budget = flags.getDouble("alloc-budget");
    AllocGate alloc_gate;
    {
        serve::ServerOptions options;
        options.port = 0;
        options.reactors = 1;
        options.sweepThreads = 1;
        serve::Server server(model, catalog, options);
        if (!server.tryStart(&error)) {
            std::cerr << "micro_serve: " << error << "\n";
            return 1;
        }
        alloc_gate = measureAllocBudget(server, mix[0], alloc_budget);
        server.stop();
    }
    if (alloc_gate.hookAvailable)
        std::cout << (alloc_gate.ok ? "[PASS]" : "[FAIL]")
                  << util::format(
                         " warm recommend request allocates %.2f "
                         "times (budget %.0f)\n",
                         alloc_gate.allocsPerRequest, alloc_budget);
    else
        std::cout << "[SKIP] allocation gate (sanitizer build owns "
                     "operator new)\n";

    // --- Rate ladder, per reactor count -------------------------------
    // A 1-core host only gets the 1-reactor rows: piling reactors onto
    // one core measures scheduler noise, not scaling.
    std::vector<int> ladder_reactors{1};
    if (scaling_meaningful)
        ladder_reactors.push_back(2);
    std::vector<Point> points;
    bool load_ok = true;
    for (const int reactors : ladder_reactors) {
        serve::ServerOptions options;
        options.port = 0;
        options.reactors = reactors;
        serve::Server server(model, catalog, options);
        if (!server.tryStart(&error)) {
            std::cerr << "micro_serve: " << error << "\n";
            return 1;
        }
        for (const auto &token :
             util::split(flags.getString("qps-targets"), ',')) {
            if (token.empty())
                continue;
            Point point;
            point.reactors = reactors;
            point.targetQps = std::stod(token);
            serve::LoadgenOptions load;
            load.port = server.port();
            load.connections =
                static_cast<int>(flags.getInt("connections"));
            load.seconds = flags.getDouble("seconds");
            load.targetQps = point.targetQps;
            load.requests = mix;
            if (!serve::runLoadgen(load, &point.result, &error)) {
                std::cerr << "micro_serve: loadgen: " << error << "\n";
                return 1;
            }
            load_ok = load_ok && point.result.succeeded > 0 &&
                      point.result.transportErrors == 0;
            points.push_back(std::move(point));
        }
        server.stop();
    }

    const auto quantile_cell = [](const serve::LoadgenResult &result,
                                  double q, double value) {
        return serve::percentileResolvable(result.latenciesUs.size(),
                                           q)
                   ? util::format("%.0f", value)
                   : std::string("n/a");
    };
    util::TablePrinter table({"reactors", "target qps", "achieved",
                              "sent", "ok", "warmup", "p50 (us)",
                              "p99 (us)", "p99.9 (us)"});
    for (const Point &point : points) {
        table.addRow(
            {std::to_string(point.reactors),
             point.targetQps <= 0.0
                 ? std::string("max")
                 : util::format("%.0f", point.targetQps),
             util::format("%.1f", point.result.achievedQps),
             std::to_string(point.result.sent),
             std::to_string(point.result.succeeded),
             std::to_string(point.result.warmupRequests),
             quantile_cell(point.result, 0.50, point.result.p50Us),
             quantile_cell(point.result, 0.99, point.result.p99Us),
             quantile_cell(point.result, 0.999,
                           point.result.p999Us)});
    }
    table.print(std::cout);
    std::cout << (load_ok ? "[PASS]" : "[FAIL]")
              << " every rate point completed without transport "
                 "errors\n";

    bench::JsonObject doc;
    doc.str("bench", "micro_serve");
    bench::addScalingFields(doc, hardware, scaling_meaningful);
    doc.num("request_mix_models",
            static_cast<std::int64_t>(mix.size()));
    doc.num("connections", flags.getInt("connections"));
    doc.boolean("identity_ok", identity_ok);
    doc.boolean("reload_ok", identity_ok);
    doc.boolean("alloc_hook", alloc_gate.hookAvailable);
    if (alloc_gate.hookAvailable)
        doc.num("allocs_per_request", alloc_gate.allocsPerRequest,
                "%.2f");
    else
        doc.nul("allocs_per_request");
    doc.num("alloc_budget", alloc_budget, "%.0f");
    doc.boolean("alloc_gate_ok", alloc_gate.ok);
    std::vector<bench::JsonObject> rows;
    for (const Point &point : points) {
        const std::size_t samples = point.result.latenciesUs.size();
        bench::JsonObject row;
        row.num("reactors", point.reactors)
            .num("target_qps", point.targetQps, "%.1f")
            .num("achieved_qps", point.result.achievedQps, "%.1f")
            .num("sent", point.result.sent)
            .num("succeeded", point.result.succeeded)
            .num("overloaded", point.result.overloaded)
            .num("transport_errors", point.result.transportErrors)
            .num("warmup_requests", point.result.warmupRequests)
            .num("p50_us", point.result.p50Us, "%.1f")
            .num("p90_us", point.result.p90Us, "%.1f");
        // Tail quantiles a small sample cannot resolve are null, not
        // a number that silently repeats the maximum.
        if (serve::percentileResolvable(samples, 0.99))
            row.num("p99_us", point.result.p99Us, "%.1f");
        else
            row.nul("p99_us");
        if (serve::percentileResolvable(samples, 0.999))
            row.num("p999_us", point.result.p999Us, "%.1f");
        else
            row.nul("p999_us");
        row.num("mean_us", point.result.meanUs, "%.1f");
        rows.push_back(std::move(row));
    }
    doc.array("points", std::move(rows));
    if (!bench::writeBenchJson(flags.getString("out"), doc))
        return 1;
    bench::flushBenchMetrics();
    return identity_ok && alloc_gate.ok && load_ok ? 0 : 1;
}
