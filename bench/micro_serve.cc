/**
 * @file
 * ceerd serving-path microbenchmark (emits BENCH_serve.json).
 *
 * Boots an in-process serve::Server on an ephemeral port, replays
 * zoo-wide recommend traffic through serve::runLoadgen at a ladder of
 * target rates (finishing with an unthrottled closed-loop point), and
 * reports throughput plus p50/p99/p999 latency per point.
 *
 * Two correctness gates ride along:
 *  - byte identity: for every model in the mix, the raw Response
 *    payload bytes from the server must equal the locally encoded
 *    result of an in-process recommend() on the same model, catalog
 *    and constraints — the server's plan-cached path is the same code.
 *  - hot reload: reloading the identical model mid-run must bump the
 *    engine generation and keep the reply bytes unchanged.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "cloud/instances.h"
#include "core/recommender.h"
#include "core/trainer.h"
#include "models/model_zoo.h"
#include "profile/profiler.h"
#include "serve/client.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace ceer;

/** One throughput/latency point of the rate ladder. */
struct Point
{
    double targetQps = 0.0;
    serve::LoadgenResult result;
};

std::vector<std::string>
parseModelList(const std::string &csv)
{
    std::vector<std::string> names = models::allModelNames();
    if (csv.empty())
        return names;
    names.clear();
    for (const auto &name : util::split(csv, ','))
        if (!name.empty())
            names.push_back(util::trim(name));
    return names;
}

} // namespace

int
main(int argc, char **argv)
{
    util::Flags flags;
    flags.defineInt("train-iters", 12,
                    "profiling iterations for the in-process model");
    flags.defineDouble("seconds", 1.5, "seconds per rate point");
    flags.defineInt("connections", 4, "loadgen connections");
    flags.defineString("models", "",
                       "comma-separated request mix (default: the "
                       "full 12-CNN zoo)");
    flags.defineString("qps-targets", "50,200,0",
                       "comma-separated target QPS ladder (0 = "
                       "unthrottled closed loop)");
    flags.defineString("out", "BENCH_serve.json",
                       "machine-readable results ('' disables)");
    flags.defineString("metrics-out", "",
                       "write a metrics JSON snapshot here (enables "
                       "observability for the run)");
    flags.parse(argc, argv);
    bench::setMetricsOut(flags.getString("metrics-out"));

    const unsigned hardware = std::thread::hardware_concurrency();
    const bool scaling_meaningful = hardware >= 2;
    util::printBanner(std::cout,
                      "micro_serve: ceerd serving path "
                      "(loadgen over loopback TCP)");
    std::cout << "hardware threads: " << hardware << "\n";

    // A cheap but real model: two CNNs profiled briefly, then the
    // standard trainer. Serving latency does not depend on the fit
    // quality, only on the plan-evaluation shape.
    profile::CollectOptions collect;
    collect.iterations = static_cast<int>(flags.getInt("train-iters"));
    const profile::ProfileDataset dataset = profile::collectProfiles(
        {"vgg_11", "inception_v1"}, collect);
    core::CeerModel model = core::trainCeer(dataset);
    const core::CeerPredictor predictor(model);
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();

    serve::ServerOptions server_options;
    server_options.port = 0;
    serve::Server server(model, catalog, server_options);
    std::string error;
    if (!server.tryStart(&error)) {
        std::cerr << "micro_serve: " << error << "\n";
        return 1;
    }

    const std::vector<std::string> names =
        parseModelList(flags.getString("models"));
    std::vector<serve::RecommendRequest> mix;
    for (const std::string &name : names) {
        serve::RecommendRequest request;
        request.model = name;
        mix.push_back(std::move(request));
    }

    // --- Byte-identity gate -------------------------------------------
    // The loadgen replies must be the same bytes an in-process
    // recommend() produces: encode the local Recommendation with the
    // same protocol codec and compare against the server's raw
    // Response payload.
    bool identity_ok = true;
    serve::ServeClient client;
    if (!client.tryConnect("127.0.0.1", server.port(), 30000,
                           &error)) {
        std::cerr << "micro_serve: " << error << "\n";
        return 1;
    }
    std::vector<std::string> first_payloads;
    for (const serve::RecommendRequest &request : mix) {
        serve::RecommendResponse response;
        std::string raw;
        const serve::CallOutcome outcome =
            client.recommend(request, &response, &raw);
        if (!outcome.ok) {
            std::cerr << "micro_serve: recommend(" << request.model
                      << ") failed: " << outcome.errorMessage << "\n";
            identity_ok = false;
            break;
        }
        const graph::Graph g =
            models::buildModel(request.model, request.batch);
        core::WorkloadSpec workload{&g, request.datasetSamples,
                                    request.batch};
        core::Constraints constraints;
        constraints.hourlyBudgetUsd = request.hourlyBudgetUsd;
        constraints.hourlyToleranceUsd = request.hourlyToleranceUsd;
        constraints.totalBudgetUsd = request.totalBudgetUsd;
        constraints.enforceGpuMemory = request.enforceGpuMemory;
        const std::string local = serve::encodeRecommendResponse(
            serve::responseFromRecommendation(core::recommend(
                predictor, workload, catalog.instances(),
                core::objectiveFunction(core::Objective::MinCost),
                constraints)));
        if (raw != local) {
            std::cerr << "micro_serve: reply for " << request.model
                      << " differs from in-process recommend()\n";
            identity_ok = false;
        }
        first_payloads.push_back(raw);
    }
    std::cout << (identity_ok ? "[PASS]" : "[FAIL]")
              << " loadgen replies byte-identical to in-process "
                 "recommend()\n";

    // --- Hot-reload gate ----------------------------------------------
    // Reload the identical model: the generation must advance and the
    // reply bytes must not change.
    bool reload_ok = identity_ok;
    const std::string reload_path =
        "micro_serve_reload_model.tmp.txt";
    {
        std::ofstream out(reload_path);
        model.save(out);
    }
    std::uint64_t generation = 0;
    const serve::CallOutcome reload_outcome =
        client.reload(reload_path, &generation);
    if (!reload_outcome.ok || generation != 2) {
        std::cerr << "micro_serve: reload failed: "
                  << reload_outcome.errorMessage << "\n";
        reload_ok = false;
    } else {
        for (std::size_t i = 0; i < mix.size(); ++i) {
            serve::RecommendResponse response;
            std::string raw;
            if (!client.recommend(mix[i], &response, &raw).ok ||
                raw != first_payloads[i]) {
                std::cerr << "micro_serve: post-reload reply for "
                          << mix[i].model << " changed\n";
                reload_ok = false;
                break;
            }
        }
    }
    std::remove(reload_path.c_str());
    client.close();
    std::cout << (reload_ok ? "[PASS]" : "[FAIL]")
              << " hot reload bumps the generation and keeps replies "
                 "identical\n";

    // --- Rate ladder --------------------------------------------------
    std::vector<Point> points;
    bool load_ok = true;
    for (const auto &token :
         util::split(flags.getString("qps-targets"), ',')) {
        if (token.empty())
            continue;
        Point point;
        point.targetQps = std::stod(token);
        serve::LoadgenOptions load;
        load.port = server.port();
        load.connections =
            static_cast<int>(flags.getInt("connections"));
        load.seconds = flags.getDouble("seconds");
        load.targetQps = point.targetQps;
        load.requests = mix;
        if (!serve::runLoadgen(load, &point.result, &error)) {
            std::cerr << "micro_serve: loadgen: " << error << "\n";
            return 1;
        }
        load_ok = load_ok && point.result.succeeded > 0 &&
                  point.result.transportErrors == 0;
        points.push_back(std::move(point));
    }
    server.stop();

    util::TablePrinter table({"target qps", "achieved", "sent", "ok",
                              "p50 (us)", "p99 (us)", "p99.9 (us)"});
    for (const Point &point : points) {
        table.addRow(
            {point.targetQps <= 0.0
                 ? std::string("max")
                 : util::format("%.0f", point.targetQps),
             util::format("%.1f", point.result.achievedQps),
             std::to_string(point.result.sent),
             std::to_string(point.result.succeeded),
             util::format("%.0f", point.result.p50Us),
             util::format("%.0f", point.result.p99Us),
             util::format("%.0f", point.result.p999Us)});
    }
    table.print(std::cout);
    std::cout << (load_ok ? "[PASS]" : "[FAIL]")
              << " every rate point completed without transport "
                 "errors\n";

    bench::JsonObject doc;
    doc.str("bench", "micro_serve");
    bench::addScalingFields(doc, hardware, scaling_meaningful);
    doc.num("request_mix_models",
            static_cast<std::int64_t>(mix.size()));
    doc.num("connections", flags.getInt("connections"));
    doc.boolean("identity_ok", identity_ok);
    doc.boolean("reload_ok", reload_ok);
    std::vector<bench::JsonObject> rows;
    for (const Point &point : points) {
        bench::JsonObject row;
        row.num("target_qps", point.targetQps, "%.1f")
            .num("achieved_qps", point.result.achievedQps, "%.1f")
            .num("sent", point.result.sent)
            .num("succeeded", point.result.succeeded)
            .num("overloaded", point.result.overloaded)
            .num("transport_errors", point.result.transportErrors)
            .num("p50_us", point.result.p50Us, "%.1f")
            .num("p90_us", point.result.p90Us, "%.1f")
            .num("p99_us", point.result.p99Us, "%.1f")
            .num("p999_us", point.result.p999Us, "%.1f")
            .num("mean_us", point.result.meanUs, "%.1f");
        rows.push_back(std::move(row));
    }
    doc.array("points", std::move(rows));
    if (!bench::writeBenchJson(flags.getString("out"), doc))
        return 1;
    bench::flushBenchMetrics();
    return identity_ok && reload_ok && load_ok ? 0 : 1;
}
