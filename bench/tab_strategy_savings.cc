/**
 * @file
 * Abstract / Sec. I claims: compared to the simple strategies of
 * renting the cheapest instance or the latest-generation (P3)
 * instance, Ceer saves up to ~36% and ~44% of rental cost; for a
 * given budget it can cut training time by large factors.
 *
 * Sweeps the four test CNNs under the cost-minimization objective and
 * reports the savings of Ceer's choice over both strategies.
 */

#include "bench/common.h"

#include <algorithm>

#include "baselines/baselines.h"
#include "cloud/instances.h"
#include "core/recommender.h"
#include "models/model_zoo.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;

    const bench::BenchConfig config = bench::parseBenchFlags(argc, argv);
    util::printBanner(std::cout,
                      "Table: Ceer's cost savings vs the cheapest-"
                      "instance and latest-GPU strategies");
    const bench::TrainedCeer trained =
        bench::trainOnPaperTrainingSet(config);
    const core::CeerPredictor predictor(trained.model);
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();
    const auto &cheapest =
        baselines::cheapestInstance(catalog.instances());
    const auto &latest =
        baselines::latestGenerationInstance(catalog.instances());

    util::TablePrinter table({"CNN", "Ceer pick", "Ceer cost",
                              "cheapest strat", "latest strat",
                              "saving vs cheapest", "saving vs latest"});
    double max_saving_cheapest = 0.0, max_saving_latest = 0.0;
    double mean_saving_cheapest = 0.0, mean_saving_latest = 0.0;
    for (const std::string &name : models::testSetNames()) {
        const graph::Graph g = models::buildModel(name, config.batch);
        core::WorkloadSpec workload{&g, bench::kImageNetSamples,
                                    config.batch};
        const core::Recommendation recommendation = core::recommend(
            predictor, workload, catalog.instances(),
            core::Objective::MinCost);
        const auto &best = recommendation.best();

        const double cheapest_cost =
            predictor
                .predictTraining(g, cheapest, bench::kImageNetSamples,
                                 config.batch)
                .costUsd(cheapest.hourlyUsd);
        const double latest_cost =
            predictor
                .predictTraining(g, latest, bench::kImageNetSamples,
                                 config.batch)
                .costUsd(latest.hourlyUsd);
        const double saving_cheapest =
            1.0 - best.costUsd / cheapest_cost;
        const double saving_latest = 1.0 - best.costUsd / latest_cost;
        table.addRow({name, best.instance.name,
                      util::format("$%.2f", best.costUsd),
                      util::format("$%.2f", cheapest_cost),
                      util::format("$%.2f", latest_cost),
                      util::format("%.0f%%", 100.0 * saving_cheapest),
                      util::format("%.0f%%", 100.0 * saving_latest)});
        max_saving_cheapest =
            std::max(max_saving_cheapest, saving_cheapest);
        max_saving_latest = std::max(max_saving_latest, saving_latest);
        mean_saving_cheapest += saving_cheapest / 4.0;
        mean_saving_latest += saving_latest / 4.0;
    }
    table.print(std::cout);
    std::cout << util::format(
        "mean savings: %.0f%% vs cheapest, %.0f%% vs latest\n",
        100.0 * mean_saving_cheapest, 100.0 * mean_saving_latest);

    bench::CheckSummary summary;
    summary.check("peak cost saving vs cheapest strategy "
                  "(paper: up to 36%)",
                  max_saving_cheapest, 0.25, 0.70);
    // Our substrate's comm overhead makes the 4-GPU P3 baseline even
    // less cost-efficient than the paper's testbed did, so the upper
    // edge is wider here (see EXPERIMENTS.md).
    summary.check("peak cost saving vs latest-GPU strategy "
                  "(paper: up to 44%)",
                  max_saving_latest, 0.35, 0.97);
    summary.check("Ceer never costs more than either strategy",
                  std::min(mean_saving_cheapest, mean_saving_latest),
                  0.0, 1.0);
    return summary.finish();
}
