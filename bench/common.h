/**
 * @file
 * Shared infrastructure for the per-figure/table bench binaries.
 *
 * Every bench binary reproduces one artifact of the paper's evaluation:
 * it re-runs the empirical study on the simulated substrate (8 training
 * CNNs x 4 GPU models), trains Ceer where needed, prints the same
 * rows/series the paper reports, and emits [PASS]/[CHECK] lines against
 * the paper's stated bands.
 */

#ifndef CEER_BENCH_COMMON_H
#define CEER_BENCH_COMMON_H

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/ceer_model.h"
#include "core/predictor.h"
#include "graph/graph.h"
#include "hw/gpu_spec.h"
#include "profile/profiler.h"
#include "util/flags.h"
#include "util/table.h"

namespace ceer {
namespace bench {

/** ImageNet size used throughout the paper's evaluation (Sec. V). */
constexpr std::int64_t kImageNetSamples = 1'200'000;

/** Default per-GPU batch size (Sec. V). */
constexpr std::int64_t kDefaultBatch = 32;

/** Common bench configuration, parsed from flags. */
struct BenchConfig
{
    int iterations = 200;      ///< Profiling iterations per run.
    int evalIterations = 120;  ///< Iterations for "observed" numbers.
    std::int64_t batch = kDefaultBatch; ///< Per-GPU batch size.
    std::uint64_t seed = 42;   ///< Base RNG seed.
    int threads = 0;           ///< Profiling workers (0 = hardware).
    /**
     * Directory of the shared on-disk profile cache ("" or "none"
     * disables). The whole bench suite shares one cache: the first
     * binary profiles and saves, the rest load in milliseconds.
     */
    std::string profileCache = "build/profile-cache";

    /**
     * Metrics JSON snapshot path ("" disables). When set, the
     * observability layer is enabled for the run and the snapshot is
     * written by CheckSummary::finish() (or flushBenchMetrics()).
     */
    std::string metricsOut;
};

/**
 * Parses the standard bench flags (--iters, --eval-iters, --batch,
 * --seed, --threads, --profile-cache, --metrics-out) plus --help.
 *
 * The paper profiles 1,000 iterations per run; the default here is 200
 * to keep single-core bench runs short. Pass --iters 1000 for full
 * fidelity (conclusions are unchanged).
 */
BenchConfig parseBenchFlags(int argc, char **argv);

/** Profiles the paper's 8 training CNNs and trains Ceer. */
struct TrainedCeer
{
    profile::ProfileDataset dataset; ///< Training profiles.
    core::CeerModel model;           ///< Trained Ceer model.
};

/** Runs the empirical study + training pipeline once. */
TrainedCeer trainOnPaperTrainingSet(const BenchConfig &config);

/**
 * Runs only the profiling half of the study (the 8 training CNNs),
 * behind the shared on-disk cache (profile::collectProfilesCached; a
 * corrupt cache entry degrades to a miss and a re-profile).
 *
 * @param config   Bench configuration.
 * @param multiGpu Also collect k=2..4 run-level profiles (needed for
 *                 the communication model; skip for op-level figures).
 */
profile::ProfileDataset
collectTrainingProfiles(const BenchConfig &config, bool multiGpu);

/**
 * The 20 heavy GPU op types shown in the paper's Figs. 2-3, in a
 * stable presentation order.
 */
const std::vector<graph::OpType> &paperHeavyOps();

/**
 * Observed mean per-iteration time (microseconds) from the simulated
 * substrate.
 *
 * @param g    Training graph.
 * @param gpu  GPU model.
 * @param k    Number of GPUs.
 * @param config Bench configuration (evalIterations, seed).
 * @param salt Extra seed salt to decorrelate measurement runs.
 */
double observedIterationUs(const graph::Graph &g, hw::GpuModel gpu,
                           int k, const BenchConfig &config,
                           std::uint64_t salt = 0);

/**
 * Registers @p path as the run's --metrics-out destination and turns
 * the observability layer on when it is nonempty. parseBenchFlags
 * calls this; micro benches with their own flag sets call it directly.
 */
void setMetricsOut(const std::string &path);

/**
 * Writes the metrics snapshot to the registered --metrics-out path
 * (no-op when none was set; fatal when the file cannot be written).
 * CheckSummary::finish() calls this, so figure/table benches get the
 * artifact for free; benches without a CheckSummary call it directly.
 */
void flushBenchMetrics();

/**
 * Insertion-ordered builder for the machine-readable BENCH_*.json
 * files. Every micro bench used to hand-roll the same ostream
 * boilerplate — brace management, trailing commas, the shared
 * hardware_threads/skipped_scaling pair — four times over; this keeps
 * the keys and per-field printf formats under each bench's control
 * while the punctuation lives in one place. Values are rendered at
 * insertion time. Arrays hold objects only (one compact row per line
 * in the output), which is the only shape the bench files use.
 */
class JsonObject
{
  public:
    /** Quoted, escaped string field. */
    JsonObject &str(const std::string &key, const std::string &value);
    /** Integer field. */
    JsonObject &num(const std::string &key, std::int64_t value);
    /** Floating-point field; @p fmt is the printf format, e.g. "%.4f". */
    JsonObject &num(const std::string &key, double value,
                    const char *fmt);
    /** true/false field. */
    JsonObject &boolean(const std::string &key, bool value);
    /** Literal null field (e.g. an unresolvable tail quantile). */
    JsonObject &nul(const std::string &key);
    /** Array-of-objects field; each row is one compact line. */
    JsonObject &array(const std::string &key,
                      std::vector<JsonObject> rows);

    /** Writes the document: pretty top level, one line per array row. */
    void write(std::ostream &out) const;

  private:
    struct Field
    {
        std::string key;
        std::string scalar;           ///< Rendered token ("" for arrays).
        std::vector<JsonObject> rows; ///< Array-of-objects payload.
        bool isArray = false;
    };
    void writeCompact(std::ostream &out) const;
    std::vector<Field> fields_;
};

/**
 * Adds the scaling-context pair every micro bench reports:
 * hardware_threads and skipped_scaling. tools/check.sh reads
 * skipped_scaling before judging any speedup number, so single-core
 * hosts never fail the gate on scheduler noise.
 */
void addScalingFields(JsonObject &doc, unsigned hardwareThreads,
                      bool scalingMeaningful);

/**
 * Writes @p doc to @p path ("" disables; that counts as success).
 * Returns false after a "cannot open <path>" diagnostic on stderr when
 * the file is unwritable, and prints the benches' usual
 * "wrote <path>" line on success.
 */
bool writeBenchJson(const std::string &path, const JsonObject &doc);

/** Collects [PASS]/[CHECK] outcomes and prints a final verdict line. */
class CheckSummary
{
  public:
    /** Emits one check line and records the outcome. */
    void
    check(const std::string &what, double measured, double lo, double hi)
    {
        allPassed_ &= util::printCheck(std::cout, what, measured, lo, hi);
        ++total_;
    }

    /** Prints "ALL n CHECKS IN BAND" or a warning; returns exit code. */
    int finish() const;

  private:
    bool allPassed_ = true;
    int total_ = 0;
};

} // namespace bench
} // namespace ceer

#endif // CEER_BENCH_COMMON_H
