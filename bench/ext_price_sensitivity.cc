/**
 * @file
 * Extension experiment (beyond the paper): price sensitivity of the
 * recommendation.
 *
 * Figs. 11 and 12 show two price points (AWS On-Demand vs commodity
 * market) flipping the cost-optimal instance for Inception-v3 from
 * 1-GPU G4 to 1-GPU P2. This bench sweeps the P2 per-GPU price
 * continuously between the two regimes ($0.90 -> $0.15) and locates
 * the crossover where the recommendation flips — the kind of question
 * a practitioner with access to spot pricing would ask Ceer.
 */

#include "bench/common.h"

#include "cloud/instances.h"
#include "core/recommender.h"
#include "models/model_zoo.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;
    using hw::GpuModel;

    const bench::BenchConfig config = bench::parseBenchFlags(argc, argv);
    util::printBanner(std::cout,
                      "Extension: P2 price sweep — where does the "
                      "Fig. 11 -> Fig. 12 winner flip?");
    const bench::TrainedCeer trained =
        bench::trainOnPaperTrainingSet(config);
    const core::CeerPredictor predictor(trained.model);
    const graph::Graph g =
        models::buildModel("inception_v3", config.batch);
    core::WorkloadSpec workload{&g, bench::kImageNetSamples,
                                config.batch};

    // Ceer's predictions are price-independent; compute them once.
    const core::TrainingPrediction p2_prediction =
        predictor.predictTraining(g, GpuModel::K80, 1,
                                  bench::kImageNetSamples, config.batch);

    util::TablePrinter table({"P2 $/GPU-hr", "P2 cost", "winner",
                              "winner cost"});
    double crossover = -1.0;
    std::string previous_winner;
    for (double price = 0.90; price >= 0.1499; price -= 0.05) {
        cloud::InstanceCatalog catalog =
            cloud::InstanceCatalog::awsOnDemand();
        // Reprice the P2 family: k GPUs at k * price (the paper's
        // market-scenario rule).
        cloud::InstanceCatalog repriced;
        for (cloud::GpuInstance instance : catalog.instances()) {
            if (instance.gpu == GpuModel::K80) {
                instance.hourlyUsd =
                    price * static_cast<double>(instance.numGpus);
            }
            repriced.add(std::move(instance));
        }
        const core::Recommendation recommendation = core::recommend(
            predictor, workload, repriced.instances(),
            core::Objective::MinCost);
        const auto &best = recommendation.best();
        table.addRow({util::format("%.2f", price),
                      util::format("$%.2f",
                                   p2_prediction.costUsd(price)),
                      best.instance.name,
                      util::format("$%.2f", best.costUsd)});
        const std::string winner_family =
            hw::gpuFamilyName(best.instance.gpu);
        if (!previous_winner.empty() &&
            winner_family != previous_winner && crossover < 0.0) {
            crossover = price;
        }
        previous_winner = winner_family;
    }
    table.print(std::cout);

    std::cout << "crossover: P2 becomes cost-optimal below "
              << util::format("$%.2f", crossover) << "/GPU-hr\n";

    bench::CheckSummary summary;
    // At the endpoints the sweep must agree with Figs. 11 and 12.
    summary.check("a crossover exists between $0.90 and $0.15 "
                  "(Figs. 11 vs 12)",
                  crossover > 0.0 ? 1.0 : 0.0, 1.0, 1.0);
    summary.check("crossover price ($/GPU-hr)", crossover, 0.15, 0.70);
    return summary.finish();
}
