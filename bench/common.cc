#include "bench/common.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "core/trainer.h"
#include "models/model_zoo.h"
#include "sim/simulator.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/strings.h"

namespace ceer {
namespace bench {

using graph::OpType;

BenchConfig
parseBenchFlags(int argc, char **argv)
{
    util::Flags flags;
    flags.defineInt("iters", 200,
                    "profiling iterations per (CNN, GPU) run "
                    "(paper: 1000)");
    flags.defineInt("eval-iters", 120,
                    "iterations for observed measurements");
    flags.defineInt("batch", kDefaultBatch, "per-GPU batch size");
    flags.defineInt("seed", 42, "base RNG seed");
    flags.defineInt("threads", 0,
                    "profiling worker threads (0 = one per hardware "
                    "thread)");
    flags.defineString("profile-cache", "build/profile-cache",
                       "shared profile cache directory ('none' "
                       "disables)");
    flags.parse(argc, argv);

    BenchConfig config;
    config.iterations = static_cast<int>(flags.getInt("iters"));
    config.evalIterations = static_cast<int>(flags.getInt("eval-iters"));
    config.batch = flags.getInt("batch");
    config.seed = static_cast<std::uint64_t>(flags.getInt("seed"));
    config.threads = static_cast<int>(flags.getInt("threads"));
    config.profileCache = flags.getString("profile-cache");
    if (config.profileCache == "none" || config.profileCache == "off")
        config.profileCache.clear();
    return config;
}

std::string
profileCachePath(const std::string &cache_dir,
                 const std::vector<std::string> &models,
                 const profile::CollectOptions &options)
{
    std::uint64_t key = util::hashMix(0, std::string("ceer-profiles-v1"));
    key = util::hashMix(key, models.size());
    for (const std::string &name : models)
        key = util::hashMix(key, name);
    key = util::hashMix(key, static_cast<std::uint64_t>(options.batch));
    key = util::hashMix(key,
                        static_cast<std::uint64_t>(options.iterations));
    key = util::hashMix(key, options.seed);
    key = util::hashMix(key,
                        static_cast<std::uint64_t>(options.maxGpus));
    key = util::hashMix(key, options.multiGpuRuns ? 1u : 0u);
    key = util::hashMix(key,
                        static_cast<std::uint64_t>(options.gpusPerHost));
    return cache_dir + "/" + util::format("profiles-%016llx.csv",
                                          (unsigned long long)key);
}

namespace {

/**
 * Cheap structural check of a cache entry so a truncated or torn file
 * is treated as a miss instead of poisoning every bench binary
 * (ProfileDataset::loadCsv is fatal on malformed rows).
 */
bool
cacheEntryLooksComplete(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::size_t lines = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        // Every saveCsv row has exactly 11 fields (10 commas).
        const auto commas =
            std::count(line.begin(), line.end(), ',');
        if (commas != 10)
            return false;
        ++lines;
    }
    return lines >= 2; // header plus at least one data row.
}

} // namespace

profile::ProfileDataset
collectTrainingProfiles(const BenchConfig &config, bool multiGpu)
{
    profile::CollectOptions options;
    options.batch = config.batch;
    options.iterations = config.iterations;
    options.seed = config.seed;
    options.multiGpuRuns = multiGpu;
    options.threads = config.threads;

    const std::vector<std::string> &names = models::trainingSetNames();
    std::string cache_file;
    if (!config.profileCache.empty()) {
        cache_file = profileCachePath(config.profileCache, names,
                                      options);
        if (std::filesystem::exists(cache_file)) {
            if (cacheEntryLooksComplete(cache_file)) {
                std::ifstream in(cache_file);
                CEER_LOG(Info) << "profile cache hit: " << cache_file;
                return profile::ProfileDataset::loadCsv(in);
            }
            CEER_LOG(Warn) << "corrupt profile cache entry, "
                              "re-profiling: "
                           << cache_file;
            std::error_code ec;
            std::filesystem::remove(cache_file, ec);
        }
    }

    profile::ProfileDataset dataset =
        profile::collectProfiles(names, options);

    if (!cache_file.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(config.profileCache, ec);
        // Write to a process-unique temp file, then rename: concurrent
        // bench binaries never observe a half-written cache entry.
        const std::string temp = cache_file + "." +
                                 std::to_string(::getpid()) + ".tmp";
        std::ofstream out(temp);
        if (out) {
            dataset.saveCsv(out);
            out.close();
            // A failed write (e.g. disk full) must not be renamed
            // into place as a valid-looking entry.
            if (!out.good()) {
                std::filesystem::remove(temp, ec);
                CEER_LOG(Warn)
                    << "profile cache write failed: " << temp;
                return dataset;
            }
            std::filesystem::rename(temp, cache_file, ec);
            if (ec) {
                std::filesystem::remove(temp, ec);
            } else {
                CEER_LOG(Info)
                    << "profile cache write: " << cache_file;
                // Reload what we just wrote so results are identical
                // whether the cache was cold or warm (the CSV encoding
                // of the running stats is mildly lossy).
                std::ifstream reread(cache_file);
                if (reread)
                    return profile::ProfileDataset::loadCsv(reread);
            }
        } else {
            CEER_LOG(Warn) << "profile cache not writable: " << temp;
        }
    }
    return dataset;
}

TrainedCeer
trainOnPaperTrainingSet(const BenchConfig &config)
{
    TrainedCeer trained;
    trained.dataset = collectTrainingProfiles(config, true);
    trained.model = core::trainCeer(trained.dataset);
    return trained;
}

const std::vector<OpType> &
paperHeavyOps()
{
    static const std::vector<OpType> ops = {
        OpType::Conv2D,
        OpType::Conv2DBackpropInput,
        OpType::Conv2DBackpropFilter,
        OpType::MaxPool,
        OpType::MaxPoolGrad,
        OpType::AvgPool,
        OpType::AvgPoolGrad,
        OpType::Relu,
        OpType::ReluGrad,
        OpType::BiasAdd,
        OpType::BiasAddGrad,
        OpType::AddV2,
        OpType::AddN,
        OpType::Mul,
        OpType::FusedBatchNormV3,
        OpType::FusedBatchNormGradV3,
        OpType::MatMul,
        OpType::ConcatV2,
        OpType::Transpose,
        OpType::Pad,
    };
    return ops;
}

double
observedIterationUs(const graph::Graph &g, hw::GpuModel gpu, int k,
                    const BenchConfig &config, std::uint64_t salt)
{
    sim::SimConfig sim_config;
    sim_config.gpu = gpu;
    sim_config.numGpus = k;
    sim_config.seed = config.seed ^ (0xABCDEF1234ull + salt * 7919);
    sim::TrainingSimulator simulator(g, sim_config);
    return simulator.run(config.evalIterations).iterationUs.mean();
}

int
CheckSummary::finish() const
{
    if (allPassed_) {
        std::cout << "ALL " << total_ << " CHECKS IN BAND\n";
        return 0;
    }
    std::cout << "NOTE: some checks outside the paper band (see "
                 "[CHECK] lines); see EXPERIMENTS.md for discussion\n";
    return 0;
}

} // namespace bench
} // namespace ceer
