#include "bench/common.h"

#include <cstdio>
#include <fstream>

#include "core/trainer.h"
#include "models/model_zoo.h"
#include "obs/metrics.h"
#include "profile/profile_cache.h"
#include "sim/simulator.h"
#include "util/logging.h"
#include "util/strings.h"

namespace ceer {
namespace bench {

using graph::OpType;

namespace {
/** The run's --metrics-out destination ("" = none). */
std::string g_metrics_out;
} // namespace

void
setMetricsOut(const std::string &path)
{
    g_metrics_out = path;
    if (!g_metrics_out.empty())
        obs::setEnabled(true);
}

void
flushBenchMetrics()
{
    if (g_metrics_out.empty())
        return;
    std::string error;
    if (!obs::tryWriteMetricsFile(g_metrics_out, &error))
        util::fatal(error);
    std::cout << "wrote metrics snapshot to " << g_metrics_out << "\n";
}

BenchConfig
parseBenchFlags(int argc, char **argv)
{
    util::Flags flags;
    flags.defineInt("iters", 200,
                    "profiling iterations per (CNN, GPU) run "
                    "(paper: 1000)");
    flags.defineInt("eval-iters", 120,
                    "iterations for observed measurements");
    flags.defineInt("batch", kDefaultBatch, "per-GPU batch size");
    flags.defineInt("seed", 42, "base RNG seed");
    flags.defineInt("threads", 0,
                    "profiling worker threads (0 = one per hardware "
                    "thread)");
    flags.defineString("profile-cache", "build/profile-cache",
                       "shared profile cache directory ('none' "
                       "disables)");
    flags.defineString("metrics-out", "",
                       "write a metrics JSON snapshot here (enables "
                       "observability for the run)");
    flags.parse(argc, argv);

    BenchConfig config;
    config.iterations = static_cast<int>(flags.getInt("iters"));
    config.evalIterations = static_cast<int>(flags.getInt("eval-iters"));
    config.batch = flags.getInt("batch");
    config.seed = static_cast<std::uint64_t>(flags.getInt("seed"));
    config.threads = static_cast<int>(flags.getInt("threads"));
    config.profileCache = flags.getString("profile-cache");
    if (config.profileCache == "none" || config.profileCache == "off")
        config.profileCache.clear();
    config.metricsOut = flags.getString("metrics-out");
    setMetricsOut(config.metricsOut);
    return config;
}

profile::ProfileDataset
collectTrainingProfiles(const BenchConfig &config, bool multiGpu)
{
    profile::CollectOptions options;
    options.batch = config.batch;
    options.iterations = config.iterations;
    options.seed = config.seed;
    options.multiGpuRuns = multiGpu;
    options.threads = config.threads;
    return profile::collectProfilesCached(models::trainingSetNames(),
                                          options,
                                          config.profileCache);
}

TrainedCeer
trainOnPaperTrainingSet(const BenchConfig &config)
{
    TrainedCeer trained;
    trained.dataset = collectTrainingProfiles(config, true);
    trained.model = core::trainCeer(trained.dataset);
    return trained;
}

const std::vector<OpType> &
paperHeavyOps()
{
    static const std::vector<OpType> ops = {
        OpType::Conv2D,
        OpType::Conv2DBackpropInput,
        OpType::Conv2DBackpropFilter,
        OpType::MaxPool,
        OpType::MaxPoolGrad,
        OpType::AvgPool,
        OpType::AvgPoolGrad,
        OpType::Relu,
        OpType::ReluGrad,
        OpType::BiasAdd,
        OpType::BiasAddGrad,
        OpType::AddV2,
        OpType::AddN,
        OpType::Mul,
        OpType::FusedBatchNormV3,
        OpType::FusedBatchNormGradV3,
        OpType::MatMul,
        OpType::ConcatV2,
        OpType::Transpose,
        OpType::Pad,
    };
    return ops;
}

double
observedIterationUs(const graph::Graph &g, hw::GpuModel gpu, int k,
                    const BenchConfig &config, std::uint64_t salt)
{
    sim::SimConfig sim_config;
    sim_config.gpu = gpu;
    sim_config.numGpus = k;
    sim_config.seed = config.seed ^ (0xABCDEF1234ull + salt * 7919);
    sim::TrainingSimulator simulator(g, sim_config);
    return simulator.run(config.evalIterations).iterationUs.mean();
}

namespace {
/** JSON string escaping (quotes, backslashes, control bytes). */
std::string
jsonEscape(const std::string &s)
{
    std::string escaped;
    escaped.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': escaped += "\\\""; break;
        case '\\': escaped += "\\\\"; break;
        case '\n': escaped += "\\n"; break;
        case '\t': escaped += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                escaped += util::format("\\u%04x", c);
            else
                escaped += c;
        }
    }
    return escaped;
}
} // namespace

JsonObject &
JsonObject::str(const std::string &key, const std::string &value)
{
    fields_.push_back({key, "\"" + jsonEscape(value) + "\"", {}, false});
    return *this;
}

JsonObject &
JsonObject::num(const std::string &key, std::int64_t value)
{
    fields_.push_back({key, std::to_string(value), {}, false});
    return *this;
}

JsonObject &
JsonObject::num(const std::string &key, double value, const char *fmt)
{
    fields_.push_back({key, util::format(fmt, value), {}, false});
    return *this;
}

JsonObject &
JsonObject::boolean(const std::string &key, bool value)
{
    fields_.push_back(
        {key, value ? std::string("true") : std::string("false"), {},
         false});
    return *this;
}

JsonObject &
JsonObject::nul(const std::string &key)
{
    fields_.push_back({key, "null", {}, false});
    return *this;
}

JsonObject &
JsonObject::array(const std::string &key, std::vector<JsonObject> rows)
{
    Field field;
    field.key = key;
    field.rows = std::move(rows);
    field.isArray = true;
    fields_.push_back(std::move(field));
    return *this;
}

void
JsonObject::writeCompact(std::ostream &out) const
{
    out << "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
        out << "\"" << fields_[i].key << "\": " << fields_[i].scalar
            << (i + 1 < fields_.size() ? ", " : "");
    }
    out << "}";
}

void
JsonObject::write(std::ostream &out) const
{
    out << "{\n";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
        const Field &field = fields_[i];
        out << "  \"" << field.key << "\": ";
        if (field.isArray) {
            out << "[\n";
            for (std::size_t r = 0; r < field.rows.size(); ++r) {
                out << "    ";
                field.rows[r].writeCompact(out);
                out << (r + 1 < field.rows.size() ? "," : "") << "\n";
            }
            out << "  ]";
        } else {
            out << field.scalar;
        }
        out << (i + 1 < fields_.size() ? "," : "") << "\n";
    }
    out << "}\n";
}

void
addScalingFields(JsonObject &doc, unsigned hardwareThreads,
                 bool scalingMeaningful)
{
    doc.num("hardware_threads", hardwareThreads);
    doc.boolean("skipped_scaling", !scalingMeaningful);
}

bool
writeBenchJson(const std::string &path, const JsonObject &doc)
{
    if (path.empty())
        return true;
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot open " << path << "\n";
        return false;
    }
    doc.write(out);
    std::cout << "wrote " << path << "\n";
    return true;
}

int
CheckSummary::finish() const
{
    flushBenchMetrics();
    if (allPassed_) {
        std::cout << "ALL " << total_ << " CHECKS IN BAND\n";
        return 0;
    }
    std::cout << "NOTE: some checks outside the paper band (see "
                 "[CHECK] lines); see EXPERIMENTS.md for discussion\n";
    return 0;
}

} // namespace bench
} // namespace ceer
