/**
 * @file
 * Observability-layer overhead microbenchmark.
 *
 * Times the hot-path record primitives (counter add, histogram
 * record, scoped timer) with observability enabled and disabled, plus
 * the multi-threaded counter throughput that the shard layout exists
 * for. The disabled numbers are the cost every instrumented hot loop
 * pays when no one is watching (one relaxed atomic load + branch);
 * the enabled numbers are what a metrics-on run costs per event.
 * Writes BENCH_obs.json; docs/observability.md quotes these numbers.
 */

#include <chrono>
#include <cstdint>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "obs/metrics.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace ceer;
using Clock = std::chrono::steady_clock;

/** One timed measurement: ns per operation over @p ops calls. */
template <typename Body>
double
nsPerOp(std::int64_t ops, const Body &body)
{
    const auto start = Clock::now();
    for (std::int64_t i = 0; i < ops; ++i)
        body();
    const auto elapsed = Clock::now() - start;
    return std::chrono::duration<double, std::nano>(elapsed).count() /
           static_cast<double>(ops);
}

struct Row
{
    std::string name;
    double enabledNs = 0.0;
    double disabledNs = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    util::Flags flags;
    flags.defineInt("ops", 2'000'000, "operations per timed loop");
    flags.defineInt("threads", 8,
                    "threads for the contended-counter measurement");
    flags.defineString("out", "BENCH_obs.json",
                       "machine-readable results ('' disables)");
    flags.defineString("metrics-out", "",
                       "write a metrics JSON snapshot here (enables "
                       "observability for the run)");
    flags.parse(argc, argv);
    bench::setMetricsOut(flags.getString("metrics-out"));

    const std::int64_t ops = flags.getInt("ops");
    const int threads = static_cast<int>(flags.getInt("threads"));
    const unsigned hardware = std::thread::hardware_concurrency();
    // On a single-core host every multi-thread point measures
    // scheduling, not shard behavior: the sweep still runs, but the
    // below-serial flag is suppressed and the JSON says so.
    const bool scaling_meaningful = hardware >= 2;

    util::printBanner(std::cout,
                      "micro_obs: metrics hot-path overhead (" +
                          std::to_string(ops) + " ops/loop)");
    std::cout << "hardware threads: " << hardware << "\n";

    std::vector<Row> rows;
    const auto measure = [&](const std::string &name, auto body) {
        Row row;
        row.name = name;
        {
            obs::ScopedEnable on(true);
            row.enabledNs = nsPerOp(ops, body);
        }
        {
            obs::ScopedEnable off(false);
            row.disabledNs = nsPerOp(ops, body);
        }
        rows.push_back(row);
    };

    measure("counter add", [] { OBS_COUNTER_INC("obs_bench.counter"); });
    measure("gauge set", [] { OBS_GAUGE_SET("obs_bench.gauge", 42.0); });
    measure("histogram record",
            [] { OBS_HISTOGRAM_RECORD("obs_bench.histogram", 17.0); });
    measure("scoped timer", [] { OBS_TIMER("obs_bench.timer_us"); });

    // Contended counter: every thread hammers the same counter; the
    // cache-line-aligned shards keep the aggregate throughput from
    // collapsing when threads are added. Swept per thread count so the
    // scaling trajectory (not just one point) is in the JSON.
    struct ContendedPoint
    {
        int threads;
        double nsPerOp;        ///< Amortized per-op cost.
        double opsPerSecond;   ///< Aggregate across all threads.
        bool belowSerial;      ///< Aggregate fell below 1-thread.
    };
    std::vector<int> sweep{1};
    for (int t = 2; t <= std::max(threads, 1); t *= 2)
        sweep.push_back(t);
    std::vector<ContendedPoint> contended;
    {
        obs::ScopedEnable on(true);
        obs::Counter &counter = obs::counter("obs_bench.contended");
        for (int t : sweep) {
            const std::int64_t per_thread = ops / t;
            const auto start = Clock::now();
            std::vector<std::thread> hammer;
            for (int i = 0; i < t; ++i)
                hammer.emplace_back([&counter, per_thread] {
                    for (std::int64_t op = 0; op < per_thread; ++op)
                        counter.add(1);
                });
            for (std::thread &thread : hammer)
                thread.join();
            const double seconds =
                std::chrono::duration<double>(Clock::now() - start)
                    .count();
            ContendedPoint point;
            point.threads = t;
            point.opsPerSecond =
                static_cast<double>(per_thread * t) / seconds;
            point.nsPerOp = seconds * 1e9 /
                            static_cast<double>(per_thread * t);
            point.belowSerial =
                scaling_meaningful && t > 1 &&
                point.opsPerSecond < contended.front().opsPerSecond;
            contended.push_back(point);
        }
    }
    const double contended_ns = contended.back().nsPerOp;

    util::TablePrinter table(
        {"primitive", "enabled ns/op", "disabled ns/op"});
    for (const Row &row : rows)
        table.addRow({row.name, util::format("%.1f", row.enabledNs),
                      util::format("%.1f", row.disabledNs)});
    table.print(std::cout);

    util::TablePrinter contended_table(
        {"threads", "ns/op", "Mops/sec"});
    for (const ContendedPoint &point : contended)
        contended_table.addRow(
            {std::to_string(point.threads),
             util::format("%.1f", point.nsPerOp),
             util::format("%.1f", point.opsPerSecond / 1e6) +
                 (point.belowSerial ? " (!)" : "")});
    contended_table.print(std::cout);
    if (!scaling_meaningful) {
        std::cout << "note: single hardware thread; scaling assertions "
                     "skipped\n";
    }

    int below_serial = 0;
    for (const ContendedPoint &point : contended)
        below_serial += point.belowSerial ? 1 : 0;
    bench::JsonObject doc;
    doc.str("bench", "micro_obs").num("ops", ops);
    bench::addScalingFields(doc, hardware, scaling_meaningful);
    doc.num("below_serial_measurements", below_serial);
    std::vector<bench::JsonObject> row_docs;
    for (const Row &row : rows) {
        bench::JsonObject r;
        r.str("name", row.name)
            .num("enabled_ns", row.enabledNs, "%.2f")
            .num("disabled_ns", row.disabledNs, "%.2f");
        row_docs.push_back(std::move(r));
    }
    doc.array("rows", std::move(row_docs));
    std::vector<bench::JsonObject> scaling_docs;
    for (const ContendedPoint &point : contended) {
        bench::JsonObject p;
        p.num("threads", point.threads)
            .num("ns_per_op", point.nsPerOp, "%.2f")
            .num("ops_per_sec", point.opsPerSecond, "%.0f")
            .boolean("below_serial", point.belowSerial);
        scaling_docs.push_back(std::move(p));
    }
    doc.array("contended_scaling", std::move(scaling_docs));
    doc.num("contended_counter_ns", contended_ns, "%.2f")
        .num("contended_threads", threads);
    if (!bench::writeBenchJson(flags.getString("out"), doc))
        return 1;
    bench::flushBenchMetrics();
    return 0;
}
