/**
 * @file
 * Observability-layer overhead microbenchmark.
 *
 * Times the hot-path record primitives (counter add, histogram
 * record, scoped timer) with observability enabled and disabled, plus
 * the multi-threaded counter throughput that the shard layout exists
 * for. The disabled numbers are the cost every instrumented hot loop
 * pays when no one is watching (one relaxed atomic load + branch);
 * the enabled numbers are what a metrics-on run costs per event.
 * Writes BENCH_obs.json; docs/observability.md quotes these numbers.
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "obs/metrics.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace ceer;
using Clock = std::chrono::steady_clock;

/** One timed measurement: ns per operation over @p ops calls. */
template <typename Body>
double
nsPerOp(std::int64_t ops, const Body &body)
{
    const auto start = Clock::now();
    for (std::int64_t i = 0; i < ops; ++i)
        body();
    const auto elapsed = Clock::now() - start;
    return std::chrono::duration<double, std::nano>(elapsed).count() /
           static_cast<double>(ops);
}

struct Row
{
    std::string name;
    double enabledNs = 0.0;
    double disabledNs = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    util::Flags flags;
    flags.defineInt("ops", 2'000'000, "operations per timed loop");
    flags.defineInt("threads", 8,
                    "threads for the contended-counter measurement");
    flags.defineString("out", "BENCH_obs.json",
                       "machine-readable results ('' disables)");
    flags.defineString("metrics-out", "",
                       "write a metrics JSON snapshot here (enables "
                       "observability for the run)");
    flags.parse(argc, argv);
    bench::setMetricsOut(flags.getString("metrics-out"));

    const std::int64_t ops = flags.getInt("ops");
    const int threads = static_cast<int>(flags.getInt("threads"));

    util::printBanner(std::cout,
                      "micro_obs: metrics hot-path overhead (" +
                          std::to_string(ops) + " ops/loop)");

    std::vector<Row> rows;
    const auto measure = [&](const std::string &name, auto body) {
        Row row;
        row.name = name;
        {
            obs::ScopedEnable on(true);
            row.enabledNs = nsPerOp(ops, body);
        }
        {
            obs::ScopedEnable off(false);
            row.disabledNs = nsPerOp(ops, body);
        }
        rows.push_back(row);
    };

    measure("counter add", [] { OBS_COUNTER_INC("obs_bench.counter"); });
    measure("gauge set", [] { OBS_GAUGE_SET("obs_bench.gauge", 42.0); });
    measure("histogram record",
            [] { OBS_HISTOGRAM_RECORD("obs_bench.histogram", 17.0); });
    measure("scoped timer", [] { OBS_TIMER("obs_bench.timer_us"); });

    // Contended counter: every thread hammers the same counter; the
    // cache-line-aligned shards keep this close to the single-thread
    // cost instead of serializing on one line.
    double contended_ns = 0.0;
    {
        obs::ScopedEnable on(true);
        obs::Counter &counter = obs::counter("obs_bench.contended");
        const std::int64_t per_thread =
            ops / std::max(threads, 1);
        const auto start = Clock::now();
        std::vector<std::thread> hammer;
        for (int t = 0; t < threads; ++t)
            hammer.emplace_back([&counter, per_thread] {
                for (std::int64_t i = 0; i < per_thread; ++i)
                    counter.add(1);
            });
        for (std::thread &thread : hammer)
            thread.join();
        const auto elapsed = Clock::now() - start;
        contended_ns =
            std::chrono::duration<double, std::nano>(elapsed).count() /
            static_cast<double>(per_thread * threads);
    }

    util::TablePrinter table(
        {"primitive", "enabled ns/op", "disabled ns/op"});
    for (const Row &row : rows)
        table.addRow({row.name, util::format("%.1f", row.enabledNs),
                      util::format("%.1f", row.disabledNs)});
    table.addRow({util::format("counter add (%d threads)", threads),
                  util::format("%.1f", contended_ns), "-"});
    table.print(std::cout);

    const std::string out_path = flags.getString("out");
    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out) {
            std::cerr << "cannot open " << out_path << "\n";
            return 1;
        }
        out << "{\n  \"bench\": \"micro_obs\",\n  \"ops\": " << ops
            << ",\n  \"rows\": [\n";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            out << "    {\"name\": \"" << rows[i].name
                << "\", \"enabled_ns\": "
                << util::format("%.2f", rows[i].enabledNs)
                << ", \"disabled_ns\": "
                << util::format("%.2f", rows[i].disabledNs) << "}"
                << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        out << "  ],\n  \"contended_counter_ns\": "
            << util::format("%.2f", contended_ns)
            << ",\n  \"contended_threads\": " << threads << "\n}\n";
        std::cout << "wrote " << out_path << "\n";
    }
    bench::flushBenchMetrics();
    return 0;
}
