/**
 * @file
 * Section III-A (in-text): the 20 heavy operation types of Fig. 2
 * contribute 47-94% of the training time across the training-set
 * CNNs, and light operations contribute less than 7%.
 */

#include "bench/common.h"

#include <map>

#include "models/model_zoo.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;
    using graph::OpType;
    using hw::GpuModel;

    const bench::BenchConfig config = bench::parseBenchFlags(argc, argv);
    util::printBanner(std::cout,
                      "Table: contribution of the Fig. 2 heavy ops and "
                      "of light ops to training time");
    const profile::ProfileDataset dataset =
        bench::collectTrainingProfiles(config, /*multiGpu=*/false);

    const std::set<OpType> top20(bench::paperHeavyOps().begin(),
                                 bench::paperHeavyOps().end());

    // Heavy/light classification per op type on P2, as in the paper.
    std::set<OpType> heavy;
    for (OpType op : dataset.opTypes(GpuModel::K80)) {
        if (graph::opTypeInfo(op).device == graph::Device::Gpu &&
            dataset.meanTimeUs(GpuModel::K80, op) >= 500.0) {
            heavy.insert(op);
        }
    }

    util::TablePrinter table({"CNN", "GPU", "top-20 share",
                              "light share", "CPU share"});
    double min_top20 = 1.0, max_top20 = 0.0, max_light = 0.0;
    for (const std::string &name : models::trainingSetNames()) {
        for (GpuModel gpu : hw::allGpuModels()) {
            double top20_time = 0.0, light = 0.0, cpu = 0.0,
                   total = 0.0;
            for (const auto *profile : dataset.opsFor(gpu)) {
                if (profile->model != name)
                    continue;
                const double contribution =
                    profile->timeUs.mean() *
                    static_cast<double>(profile->occurrences);
                total += contribution;
                if (profile->onCpu)
                    cpu += contribution;
                else if (top20.count(profile->op))
                    top20_time += contribution;
                else if (!heavy.count(profile->op))
                    light += contribution;
            }
            const double top20_share = top20_time / total;
            const double light_share = light / total;
            table.addRow({name, hw::gpuModelName(gpu),
                          util::format("%.1f%%", 100.0 * top20_share),
                          util::format("%.1f%%", 100.0 * light_share),
                          util::format("%.1f%%", 100.0 * cpu / total)});
            min_top20 = std::min(min_top20, top20_share);
            max_top20 = std::max(max_top20, top20_share);
            max_light = std::max(max_light, light_share);
        }
    }
    table.print(std::cout);

    bench::CheckSummary summary;
    summary.check("minimum top-20 heavy-op share (paper: 47%..)",
                  min_top20, 0.45, 1.0);
    summary.check("maximum top-20 heavy-op share (paper: ..94%)",
                  max_top20, 0.80, 1.0);
    summary.check("maximum light-op share (paper: < 7%)", max_light,
                  0.0, 0.07);
    return summary.finish();
}
