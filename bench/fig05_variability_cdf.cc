/**
 * @file
 * Figure 5: CDF of the normalized standard deviation (stddev / mean)
 * of compute times across {heavy GPU op, input size} instances, one
 * CDF per GPU model.
 *
 * Paper claim checked: ~95% of instances have normalized stddev below
 * 0.1 on every GPU model; light/CPU ops (excluded from the CDF, as in
 * the paper) are far noisier.
 */

#include "bench/common.h"

#include "util/stats.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;
    using hw::GpuModel;

    const bench::BenchConfig config = bench::parseBenchFlags(argc, argv);
    util::printBanner(
        std::cout,
        "Figure 5: CDF of normalized stddev of heavy-op compute times");
    const profile::ProfileDataset dataset =
        bench::collectTrainingProfiles(config, /*multiGpu=*/false);

    // Heavy classification by mean time on P2, as in the paper.
    std::set<graph::OpType> heavy;
    for (graph::OpType op : dataset.opTypes(GpuModel::K80)) {
        if (graph::opTypeInfo(op).device == graph::Device::Gpu &&
            dataset.meanTimeUs(GpuModel::K80, op) >= 500.0) {
            heavy.insert(op);
        }
    }

    // The paper's Fig. 5 additionally "omit[s] operations that have
    // negligible compute times": apply the same 0.5ms-on-P2 criterion
    // at instance granularity, matching instances across GPUs by their
    // (model, op, input sizes) identity.
    auto instance_key = [](const profile::OpProfile &profile) {
        std::string key =
            profile.model + "|" + graph::opTypeName(profile.op);
        for (double f : profile.features)
            key += "|" + util::format("%.0f", f);
        return key;
    };
    std::set<std::string> significant;
    for (const auto *profile : dataset.opsFor(GpuModel::K80)) {
        if (!profile->onCpu && profile->timeUs.mean() >= 500.0)
            significant.insert(instance_key(*profile));
    }

    bench::CheckSummary summary;
    util::TablePrinter table({"GPU", "instances", "p50", "p90", "p95",
                              "p99", "frac < 0.1"});
    for (GpuModel gpu : hw::allGpuModels()) {
        std::vector<double> normalized;
        double light_sum = 0.0;
        std::size_t light_count = 0;
        for (const auto *profile : dataset.opsFor(gpu)) {
            if (profile->onCpu)
                continue;
            if (heavy.count(profile->op)) {
                if (significant.count(instance_key(*profile))) {
                    normalized.push_back(
                        profile->timeUs.normalizedStddev());
                }
            } else {
                light_sum += profile->timeUs.normalizedStddev();
                ++light_count;
            }
        }
        const double below =
            static_cast<double>(std::count_if(
                normalized.begin(), normalized.end(),
                [](double v) { return v < 0.1; })) /
            static_cast<double>(normalized.size());
        table.addRow({hw::gpuModelName(gpu),
                      std::to_string(normalized.size()),
                      util::format("%.3f",
                                   util::percentile(normalized, 50)),
                      util::format("%.3f",
                                   util::percentile(normalized, 90)),
                      util::format("%.3f",
                                   util::percentile(normalized, 95)),
                      util::format("%.3f",
                                   util::percentile(normalized, 99)),
                      util::format("%.3f", below)});
        summary.check("fraction of heavy instances with CV < 0.1 on " +
                          hw::gpuModelName(gpu) + " (paper ~0.95)",
                      below, 0.88, 1.0);
        if (light_count) {
            summary.check(
                "light ops noisier than heavy on " +
                    hw::gpuModelName(gpu),
                (light_sum / static_cast<double>(light_count)) /
                    util::percentile(normalized, 50),
                2.0, 1e9);
        }
    }
    table.print(std::cout);

    // Print one CDF (K80) as the figure's series.
    std::vector<double> k80;
    for (const auto *profile : dataset.opsFor(GpuModel::K80)) {
        if (!profile->onCpu && heavy.count(profile->op) &&
            significant.count(instance_key(*profile))) {
            k80.push_back(profile->timeUs.normalizedStddev());
        }
    }
    std::cout << "\nK80 CDF series (normalized stddev, cumulative "
                 "fraction):\n";
    for (const auto &point : util::empiricalCdf(k80, 20)) {
        std::cout << util::format("  %.4f  %.3f\n", point.value,
                                  point.cumulative);
    }
    return summary.finish();
}
