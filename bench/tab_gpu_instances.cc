/**
 * @file
 * Section II table: the four AWS GPU offerings (hardware specs and
 * 1-GPU instance prices) plus the Sec. V multi-GPU instances — checked
 * verbatim against the numbers printed in the paper.
 */

#include "bench/common.h"

#include <map>

#include "cloud/instances.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;
    using hw::GpuModel;

    (void)bench::parseBenchFlags(argc, argv);
    util::printBanner(std::cout,
                      "Sec. II: AWS GPU models and instance prices");

    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();
    util::TablePrinter table({"family", "GPU", "cores", "memory",
                              "1-GPU instance", "$/hr",
                              "multi-GPU instance", "$/hr "});
    for (GpuModel gpu : hw::allGpuModels()) {
        const hw::GpuSpec &spec = hw::gpuSpec(gpu);
        const auto &single = catalog.find(gpu, 1);
        // Largest catalog entry per family (AWS's real P2 multi-GPU
        // instance has 8 GPUs; the catalog models the 4-GPU subset
        // the paper evaluates, via its proxy rule).
        const auto &biggest = catalog.find(gpu, 4);
        table.addRow({spec.family, spec.name,
                      std::to_string(spec.cudaCores),
                      util::format("%.0fGB", spec.memoryGB),
                      single.name,
                      util::format("%.3f", single.hourlyUsd),
                      biggest.name,
                      util::format("%.3f", biggest.hourlyUsd)});
    }
    table.print(std::cout);

    bench::CheckSummary summary;
    summary.check("V100 CUDA cores (paper: 5,120)",
                  hw::gpuSpec(GpuModel::V100).cudaCores, 5120, 5120);
    summary.check("K80 cores (paper: 2,496)",
                  hw::gpuSpec(GpuModel::K80).cudaCores, 2496, 2496);
    summary.check("T4 cores (paper: 2,560)",
                  hw::gpuSpec(GpuModel::T4).cudaCores, 2560, 2560);
    summary.check("M60 cores (paper: 2,048)",
                  hw::gpuSpec(GpuModel::M60).cudaCores, 2048, 2048);
    summary.check("M60 memory GB (paper: 8)",
                  hw::gpuSpec(GpuModel::M60).memoryGB, 8, 8);
    summary.check("K80 memory GB (paper: 12)",
                  hw::gpuSpec(GpuModel::K80).memoryGB, 12, 12);
    summary.check("p3.2xlarge $/hr (paper: 3.06)",
                  catalog.find("p3.2xlarge").hourlyUsd, 3.06, 3.06);
    summary.check("g4dn.2xlarge $/hr (paper: 0.752)",
                  catalog.find("g4dn.2xlarge").hourlyUsd, 0.752,
                  0.752);
    summary.check("hourly price spread of 1-GPU instances "
                  "(paper: $0.75-$3.06)",
                  catalog.find("g3s.xlarge").hourlyUsd, 0.75, 0.75);
    return summary.finish();
}
