/**
 * @file
 * Figure 9: hourly-budget scenario ($3/hr). For each GPU family, the
 * largest instance within the (slightly tolerant) budget is selected —
 * 3-GPU P2, 3-GPU G3, 3-GPU G4 and 1-GPU P3 — and per-iteration
 * training time is compared observed vs predicted; the objective is
 * training throughput (samples/s).
 *
 * Paper claims checked: the paper's instance sizes fall out of the
 * budget rule; prediction error stays near the paper's 5.6%; Ceer
 * ranks the candidates correctly for every test CNN; the optimal
 * family is CNN-dependent.
 */

#include "bench/common.h"

#include <algorithm>
#include <cmath>

#include "cloud/instances.h"
#include "models/model_zoo.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;
    using cloud::GpuInstance;
    using hw::GpuModel;

    const bench::BenchConfig config = bench::parseBenchFlags(argc, argv);
    util::printBanner(std::cout,
                      "Figure 9: per-iteration time under a $3/hr "
                      "budget (tolerance $0.42, as in the paper)");
    const bench::TrainedCeer trained =
        bench::trainOnPaperTrainingSet(config);
    const core::CeerPredictor predictor(trained.model);
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();
    const std::vector<GpuInstance> picks =
        catalog.largestPerFamilyWithin(3.0, 0.42);

    std::cout << "candidate instances:";
    for (const auto &instance : picks) {
        std::cout << " " << instance.name << " ("
                  << instance.numGpus << "x"
                  << hw::gpuModelName(instance.gpu) << ", $"
                  << util::format("%.3f", instance.hourlyUsd) << ")";
    }
    std::cout << "\n";

    bench::CheckSummary summary;
    std::map<GpuModel, int> expected_gpus = {{GpuModel::K80, 3},
                                             {GpuModel::M60, 3},
                                             {GpuModel::T4, 3},
                                             {GpuModel::V100, 1}};
    int sizes_match = 0;
    for (const auto &instance : picks)
        sizes_match += expected_gpus.at(instance.gpu) ==
                       instance.numGpus;
    summary.check("families matching the paper's instance sizes "
                  "(P2:3, G3:3, G4:3, P3:1)",
                  sizes_match, 4, 4);

    util::TablePrinter table({"CNN", "instance", "obs/iter",
                              "pred/iter", "error", "obs samples/s"});
    double total_error = 0.0;
    int points = 0, ranking_matches = 0;
    std::map<GpuModel, int> winner_count;
    std::uint64_t salt = 100;
    for (const std::string &name : models::testSetNames()) {
        const graph::Graph g = models::buildModel(name, config.batch);
        std::map<GpuModel, double> observed_tput, predicted_tput;
        const GpuInstance *best_observed = nullptr;
        double best_observed_tput = 0.0;
        for (const auto &instance : picks) {
            const double obs_iter_us = bench::observedIterationUs(
                g, instance.gpu, instance.numGpus, config, ++salt);
            const double pred_iter_us = predictor.predictIterationUs(
                g, instance.gpu, instance.numGpus);
            const double samples_per_iter = static_cast<double>(
                config.batch * instance.numGpus);
            observed_tput[instance.gpu] =
                samples_per_iter / (obs_iter_us / 1e6);
            predicted_tput[instance.gpu] =
                samples_per_iter / (pred_iter_us / 1e6);
            const double error = pred_iter_us / obs_iter_us - 1.0;
            total_error += std::abs(error);
            ++points;
            table.addRow({name, instance.name,
                          util::humanMicros(obs_iter_us),
                          util::humanMicros(pred_iter_us),
                          util::format("%+.1f%%", 100.0 * error),
                          util::format("%.0f",
                                       observed_tput[instance.gpu])});
            if (observed_tput[instance.gpu] > best_observed_tput) {
                best_observed_tput = observed_tput[instance.gpu];
                best_observed = &instance;
            }
        }
        table.addSeparator();
        ++winner_count[best_observed->gpu];

        auto order = [&](const std::map<GpuModel, double> &values) {
            std::vector<GpuModel> gpus;
            for (const auto &instance : picks)
                gpus.push_back(instance.gpu);
            std::sort(gpus.begin(), gpus.end(),
                      [&](GpuModel a, GpuModel b) {
                          return values.at(a) > values.at(b);
                      });
            return gpus;
        };
        ranking_matches +=
            order(observed_tput) == order(predicted_tput);
    }
    table.print(std::cout);

    std::cout << "observed throughput winners by family:";
    for (const auto &[gpu, count] : winner_count)
        std::cout << " " << hw::gpuModelName(gpu) << "=" << count;
    std::cout << "\n";

    summary.check("mean |per-iteration prediction error| "
                  "(paper: 5.6%)",
                  total_error / points, 0.0, 0.10);
    summary.check("CNNs with correct predicted ranking (paper: 4/4)",
                  ranking_matches, 3, 4);
    // Paper: the winner depends on the CNN (P3 for some, G4 for
    // others) rather than a single family dominating.
    summary.check("distinct winning families across test CNNs "
                  "(paper: 2)",
                  static_cast<double>(winner_count.size()), 1, 4);
    return summary.finish();
}
