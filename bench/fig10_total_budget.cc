/**
 * @file
 * Figure 10: total-budget scenario — training ResNet-101 on ImageNet
 * with a hard cap on total rental spend; pick the feasible instance
 * with the lowest training time.
 *
 * The paper uses a $10 cap on its testbed. Our simulated substrate is
 * ~2x slower in absolute terms (see EXPERIMENTS.md), so the default
 * budget here is $32; pass --budget to override. Claims checked: every
 * P2 instance and the 4-GPU P3 instance blow the budget, Ceer predicts
 * feasibility correctly for every instance, the 3-GPU P3 instance is
 * both predicted and observed optimal, and the cheapest-per-hour
 * feasible instance (1-GPU G3) is ~9x slower than Ceer's choice.
 */

#include "bench/common.h"

#include <cmath>

#include "cloud/instances.h"
#include "core/recommender.h"
#include "models/model_zoo.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;
    using hw::GpuModel;

    util::Flags flags;
    flags.defineInt("iters", 200, "profiling iterations per run");
    flags.defineInt("eval-iters", 120, "observed-measurement iters");
    flags.defineInt("batch", 32, "per-GPU batch size");
    flags.defineInt("seed", 42, "base RNG seed");
    flags.defineDouble("budget", 20.0,
                       "total budget in USD (paper: $10 on its ~2x "
                       "faster testbed)");
    flags.parse(argc, argv);
    bench::BenchConfig config;
    config.iterations = static_cast<int>(flags.getInt("iters"));
    config.evalIterations = static_cast<int>(flags.getInt("eval-iters"));
    config.batch = flags.getInt("batch");
    config.seed = static_cast<std::uint64_t>(flags.getInt("seed"));
    const double budget = flags.getDouble("budget");

    util::printBanner(
        std::cout,
        util::format("Figure 10: ResNet-101 training time under a "
                     "$%.0f total budget", budget));
    const bench::TrainedCeer trained =
        bench::trainOnPaperTrainingSet(config);
    const core::CeerPredictor predictor(trained.model);
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();
    const graph::Graph g = models::buildModel("resnet_101", config.batch);

    core::WorkloadSpec workload{&g, bench::kImageNetSamples,
                                config.batch};
    core::Constraints constraints;
    constraints.totalBudgetUsd = budget;
    const core::Recommendation recommendation = core::recommend(
        predictor, workload, catalog.instances(),
        core::Objective::MinTrainingTime, constraints);

    util::TablePrinter table({"instance", "obs time", "pred time",
                              "obs cost", "pred cost", "feasible"});
    int feasibility_agreements = 0;
    bool p2_all_infeasible = true;
    bool p3_4gpu_infeasible = false;
    double observed_best_hours = 1e18;
    std::string observed_best;
    double g3_1gpu_hours = 0.0;
    std::uint64_t salt = 200;
    for (const auto &evaluation : recommendation.evaluations) {
        const auto &instance = evaluation.instance;
        const std::int64_t iterations =
            bench::kImageNetSamples / (instance.numGpus * config.batch);
        const double obs_iter_us = bench::observedIterationUs(
            g, instance.gpu, instance.numGpus, config, ++salt);
        const double obs_hours =
            obs_iter_us * static_cast<double>(iterations) / 3.6e9;
        const double obs_cost = obs_hours * instance.hourlyUsd;
        const bool obs_feasible = obs_cost <= budget;
        table.addRow({instance.name, util::format("%.2fh", obs_hours),
                      util::format("%.2fh", evaluation.prediction.hours),
                      util::format("$%.2f", obs_cost),
                      util::format("$%.2f", evaluation.costUsd),
                      evaluation.feasible() ? "yes" : "no"});
        feasibility_agreements +=
            obs_feasible == evaluation.feasible();
        if (instance.gpu == GpuModel::K80)
            p2_all_infeasible &= !evaluation.feasible();
        if (instance.gpu == GpuModel::V100 && instance.numGpus == 4)
            p3_4gpu_infeasible = !evaluation.feasible();
        if (obs_feasible && obs_hours < observed_best_hours) {
            observed_best_hours = obs_hours;
            observed_best = instance.name;
        }
        if (instance.gpu == GpuModel::M60 && instance.numGpus == 1)
            g3_1gpu_hours = obs_hours;
    }
    table.print(std::cout);

    std::cout << "Ceer picks: "
              << (recommendation.bestIndex >= 0
                      ? recommendation.best().instance.name
                      : std::string("(none)"))
              << ", observed best: " << observed_best << "\n";

    bench::CheckSummary summary;
    summary.check("instances where predicted feasibility == observed "
                  "(paper: all)",
                  feasibility_agreements, 15, 16);
    summary.check("all P2 instances infeasible (paper: yes)",
                  p2_all_infeasible ? 1.0 : 0.0, 1.0, 1.0);
    summary.check("4-GPU P3 infeasible (paper: yes)",
                  p3_4gpu_infeasible ? 1.0 : 0.0, 1.0, 1.0);
    summary.check(
        "Ceer's pick is the 3-GPU P3 instance (paper: yes)",
        recommendation.bestIndex >= 0 &&
                recommendation.best().instance.gpu == GpuModel::V100 &&
                recommendation.best().instance.numGpus == 3
            ? 1.0
            : 0.0,
        1.0, 1.0);
    summary.check("Ceer's pick matches the observed optimum",
                  recommendation.bestIndex >= 0 &&
                          recommendation.best().instance.name ==
                              observed_best
                      ? 1.0
                      : 0.0,
                  1.0, 1.0);
    summary.check("1-GPU G3 slowdown vs Ceer's pick (paper: 9.1x)",
                  g3_1gpu_hours / observed_best_hours, 5.0, 14.0);
    return summary.finish();
}
