/**
 * @file
 * Figure 6: training time vs number of GPUs under data parallelism for
 * Inception-v1 over 6,400 ImageNet samples (batch 32 per GPU), for
 * every GPU model.
 *
 * Paper claims checked: training time falls monotonically with more
 * GPUs, and the reductions relative to 1 GPU average ~35.8% (2 GPUs),
 * ~46.6% (3) and ~53.6% (4) across GPU models, with diminishing
 * returns.
 */

#include "bench/common.h"

#include "models/model_zoo.h"
#include "sim/simulator.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;
    using hw::GpuModel;

    const bench::BenchConfig config = bench::parseBenchFlags(argc, argv);
    util::printBanner(std::cout,
                      "Figure 6: training time vs #GPUs, Inception-v1, "
                      "6400 samples");
    const graph::Graph g = models::buildInceptionV1(config.batch);
    constexpr std::int64_t kSamples = 6400;

    util::TablePrinter table({"GPU", "1 GPU", "2 GPUs", "3 GPUs",
                              "4 GPUs"});
    double reduction[3] = {0.0, 0.0, 0.0};
    for (GpuModel gpu : hw::allGpuModels()) {
        std::vector<std::string> row{hw::gpuModelName(gpu) + " (" +
                                     hw::gpuFamilyName(gpu) + ")"};
        double t1_hours = 0.0;
        for (int k = 1; k <= 4; ++k) {
            sim::SimConfig sim_config;
            sim_config.gpu = gpu;
            sim_config.numGpus = k;
            sim_config.seed = config.seed + static_cast<unsigned>(k);
            const sim::TrainingRunEstimate estimate =
                sim::simulateTraining(g, sim_config, kSamples,
                                      config.batch,
                                      config.evalIterations);
            const double hours = estimate.totalHours;
            row.push_back(util::humanMicros(hours * 3.6e9));
            if (k == 1)
                t1_hours = hours;
            else
                reduction[k - 2] += 1.0 - hours / t1_hours;
        }
        table.addRow(row);
    }
    table.print(std::cout);

    bench::CheckSummary summary;
    const char *labels[3] = {"2 GPUs", "3 GPUs", "4 GPUs"};
    const double expected[3] = {0.358, 0.466, 0.536};
    for (int i = 0; i < 3; ++i) {
        summary.check(
            util::format("mean training-time reduction at %s (paper "
                         "%.1f%%)",
                         labels[i], 100.0 * expected[i]),
            reduction[i] / 4.0, expected[i] - 0.06, expected[i] + 0.06);
    }
    // Diminishing returns: marginal gains shrink.
    summary.check("marginal gain 1->2 exceeds 2->3 (diminishing "
                  "returns)",
                  (reduction[0] - 0.0) -
                      (reduction[1] - reduction[0]),
                  0.0, 4.0);
    summary.check("marginal gain 2->3 exceeds 3->4",
                  (reduction[1] - reduction[0]) -
                      (reduction[2] - reduction[1]),
                  0.0, 4.0);
    return summary.finish();
}
