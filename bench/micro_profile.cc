/**
 * @file
 * Profiling-engine throughput microbenchmark.
 *
 * Profiles one CNN across all four GPU models at increasing thread
 * counts and reports ops-profiled/sec plus the speedup over the serial
 * run. Also asserts that every thread count produced a byte-identical
 * dataset (the engine's determinism contract) and writes a
 * machine-readable BENCH_profile.json so future PRs can track the
 * perf trajectory.
 */

#include <chrono>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "models/model_zoo.h"
#include "profile/profiler.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace ceer;
    using Clock = std::chrono::steady_clock;

    util::Flags flags;
    flags.defineString("model", "inception_v1", "CNN to profile");
    flags.defineInt("iters", 60, "profiling iterations per run");
    flags.defineInt("max-threads", 0,
                    "largest thread count to sweep (0 = hardware "
                    "threads; capped at hardware threads either way)");
    flags.defineString("out", "BENCH_profile.json",
                       "machine-readable results ('' disables)");
    flags.defineString("metrics-out", "",
                       "write a metrics JSON snapshot here (enables "
                       "observability for the run)");
    flags.parse(argc, argv);
    bench::setMetricsOut(flags.getString("metrics-out"));

    const std::string model = flags.getString("model");
    profile::CollectOptions options;
    options.iterations = static_cast<int>(flags.getInt("iters"));
    options.multiGpuRuns = true;

    // Cap the sweep at the hardware: thread counts beyond
    // hardware_concurrency() only measure scheduler contention, and on
    // a small host they used to report "speedups" below 1.0x with no
    // indication anything was wrong.
    const unsigned hardware = std::thread::hardware_concurrency();
    const int hardware_cap = static_cast<int>(hardware ? hardware : 1);
    int max_threads = static_cast<int>(flags.getInt("max-threads"));
    if (max_threads <= 0)
        max_threads = hardware_cap;
    if (max_threads > hardware_cap) {
        std::cout << "capping --max-threads " << max_threads << " at "
                  << hardware_cap << " hardware thread"
                  << (hardware_cap == 1 ? "" : "s")
                  << " (oversubscription measures scheduling, not "
                     "speedup)\n";
        max_threads = hardware_cap;
    }

    std::vector<int> sweep;
    for (int t = 1; t <= max_threads; t *= 2)
        sweep.push_back(t);
    if (sweep.back() != max_threads)
        sweep.push_back(max_threads);

    util::printBanner(std::cout,
                      "micro_profile: parallel profiling throughput (" +
                          model + ", " +
                          std::to_string(options.iterations) +
                          " iters/run)");
    std::cout << "hardware threads: " << hardware << "\n";

    struct Result
    {
        int threads;
        double wallSeconds;
        double opsPerSecond;
        double speedup;
        bool belowSerial;
    };
    // On a single-core host every multi-thread point measures
    // scheduling, not speedup: identity is still checked, but the
    // below-serial flag is suppressed and the JSON says so.
    const bool scaling_meaningful = hardware >= 2;
    std::vector<Result> results;
    std::string reference_csv;
    double serial_wall = 0.0;

    util::TablePrinter table(
        {"threads", "wall (s)", "ops/sec", "speedup", "identical"});
    for (int threads : sweep) {
        options.threads = threads;
        const auto start = Clock::now();
        const profile::ProfileDataset dataset =
            profile::collectProfiles({model}, options);
        const double wall =
            std::chrono::duration<double>(Clock::now() - start).count();

        // Executions observed, not instances: the real unit of work.
        double executions = 0.0;
        for (const auto &profile : dataset.ops())
            executions += static_cast<double>(profile.timeUs.count());

        std::ostringstream csv;
        dataset.saveCsv(csv);
        if (threads == 1) {
            reference_csv = csv.str();
            serial_wall = wall;
        }
        const bool identical = csv.str() == reference_csv;

        Result r;
        r.threads = threads;
        r.wallSeconds = wall;
        r.opsPerSecond = executions / wall;
        r.speedup = serial_wall / wall;
        r.belowSerial =
            scaling_meaningful && threads > 1 && r.speedup < 1.0;
        results.push_back(r);
        table.addRow({std::to_string(threads),
                      util::format("%.3f", r.wallSeconds),
                      util::format("%.3g", r.opsPerSecond),
                      util::format("%.2fx", r.speedup) +
                          (r.belowSerial ? " (!)" : ""),
                      identical ? "yes" : "NO"});
        if (r.belowSerial) {
            std::cout << "warning: " << threads
                      << " threads ran slower than serial; treat this "
                         "point as noise, not a regression\n";
        }
        if (!identical) {
            std::cerr << "FAIL: dataset at " << threads
                      << " threads differs from the serial dataset\n";
            return 1;
        }
    }
    table.print(std::cout);
    if (!scaling_meaningful) {
        std::cout << "note: single hardware thread; scaling assertions "
                     "skipped (identity still enforced)\n";
    }

    int below_serial = 0;
    for (const Result &r : results)
        below_serial += r.belowSerial ? 1 : 0;
    bench::JsonObject doc;
    doc.str("benchmark", "profile_throughput")
        .str("model", model)
        .num("iterations", options.iterations);
    bench::addScalingFields(doc, hardware, scaling_meaningful);
    doc.num("max_threads_swept", max_threads)
        .num("below_serial_measurements", below_serial);
    std::vector<bench::JsonObject> rows;
    for (const Result &r : results) {
        bench::JsonObject row;
        row.num("threads", r.threads)
            .num("wall_s", r.wallSeconds, "%.6f")
            .num("ops_per_sec", r.opsPerSecond, "%.1f")
            .num("speedup", r.speedup, "%.4f")
            .boolean("below_serial", r.belowSerial);
        rows.push_back(std::move(row));
    }
    doc.array("results", std::move(rows));
    if (!bench::writeBenchJson(flags.getString("out"), doc))
        return 1;
    bench::flushBenchMetrics();
    return 0;
}
