/**
 * @file
 * Design-choice ablation (Sec. IV-B): Ceer fits most heavy ops with
 * linear regression but selects a quadratic fit where it clearly wins
 * (Conv2DBackpropFilter). This bench forces linear-only fits and
 * measures what the selection buys.
 */

#include "bench/common.h"

#include <cmath>

#include "core/trainer.h"
#include "models/model_zoo.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;
    using graph::OpType;
    using hw::GpuModel;

    const bench::BenchConfig config = bench::parseBenchFlags(argc, argv);
    util::printBanner(std::cout,
                      "Ablation: linear-only fits vs Ceer's "
                      "linear/quadratic selection");
    const profile::ProfileDataset dataset =
        bench::collectTrainingProfiles(config, /*multiGpu=*/false);

    const core::CeerModel selected = core::trainCeer(dataset);
    core::TrainOptions linear_only;
    linear_only.quadraticGain = 1e9; // quadratic never selected
    const core::CeerModel linear = core::trainCeer(dataset, linear_only);

    // Compare per-(GPU, op) training R^2 for the op the paper calls
    // out, plus count how often the selection engaged at all.
    util::TablePrinter table({"GPU", "CFG R^2 linear",
                              "CFG R^2 selected", "selected fit"});
    int quadratic_count = 0;
    int total_quadratic = 0;
    double worst_gap = 0.0;
    for (GpuModel gpu : hw::allGpuModels()) {
        const auto *sel =
            selected.opModel(gpu, OpType::Conv2DBackpropFilter);
        const auto *lin =
            linear.opModel(gpu, OpType::Conv2DBackpropFilter);
        if (!sel || !lin || !sel->usable)
            continue;
        table.addRow({hw::gpuModelName(gpu),
                      util::format("%.4f", lin->r2),
                      util::format("%.4f", sel->r2),
                      sel->quadratic ? "quadratic" : "linear"});
        quadratic_count += sel->quadratic;
        worst_gap = std::max(worst_gap, sel->r2 - lin->r2);
    }
    for (const auto &[key, entry] : selected.opModels)
        total_quadratic += entry.quadratic;
    table.print(std::cout);
    std::cout << "quadratic fits selected across all (GPU, op) models: "
              << total_quadratic << "\n";

    bench::CheckSummary summary;
    summary.check("GPUs where Conv2DBackpropFilter selects the "
                  "quadratic fit (paper: it is the quadratic example)",
                  quadratic_count, 2, 4);
    summary.check("R^2 gained by the selection on CFG (best GPU)",
                  worst_gap, 0.002, 1.0);
    // The selection must stay rare: most ops are linear (Sec. IV-B).
    summary.check(
        "fraction of op models using the quadratic fit (paper: 'a few "
        "operations')",
        static_cast<double>(total_quadratic) /
            static_cast<double>(selected.opModels.size()),
        0.0, 0.35);
    return summary.finish();
}
