/**
 * @file
 * Design-choice ablation (Sec. IV-B): Ceer uses the sample *median*
 * for light GPU and CPU op estimates "to avoid the unfair impact of
 * possible outliers". This bench swaps in the sample mean and shows
 * the median is the more robust location estimate for these
 * heavy-tailed distributions.
 */

#include "bench/common.h"

#include <cmath>

#include "core/trainer.h"
#include "models/model_zoo.h"
#include "util/stats.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;

    const bench::BenchConfig config = bench::parseBenchFlags(argc, argv);
    util::printBanner(std::cout,
                      "Ablation: median vs mean estimators for "
                      "light-GPU and CPU op times");
    const profile::ProfileDataset dataset =
        bench::collectTrainingProfiles(config, /*multiGpu=*/false);
    const core::CeerModel model = core::trainCeer(dataset);

    // Pool the same samples the trainer pooled and compare location
    // estimates.
    std::vector<double> light_samples, cpu_samples;
    for (const auto &profile : dataset.ops()) {
        const auto &samples = profile.samples.samples();
        if (profile.onCpu) {
            cpu_samples.insert(cpu_samples.end(), samples.begin(),
                               samples.end());
        } else if (!model.heavyOps.count(profile.op)) {
            light_samples.insert(light_samples.end(), samples.begin(),
                                 samples.end());
        }
    }
    auto mean_of = [](const std::vector<double> &values) {
        util::RunningStats stats;
        for (double v : values)
            stats.add(v);
        return stats.mean();
    };
    const double light_median = util::median(light_samples);
    const double light_mean = mean_of(light_samples);
    const double cpu_median = util::median(cpu_samples);
    const double cpu_mean = mean_of(cpu_samples);

    util::TablePrinter table({"population", "samples", "median (us)",
                              "mean (us)", "mean/median"});
    table.addRow({"light GPU ops", std::to_string(light_samples.size()),
                  util::format("%.1f", light_median),
                  util::format("%.1f", light_mean),
                  util::format("%.2fx", light_mean / light_median)});
    table.addRow({"CPU ops", std::to_string(cpu_samples.size()),
                  util::format("%.1f", cpu_median),
                  util::format("%.1f", cpu_mean),
                  util::format("%.2fx", cpu_mean / cpu_median)});
    table.print(std::cout);

    // How much of each population is within 2x of each estimator?
    auto coverage = [](const std::vector<double> &values,
                       double center) {
        std::size_t within = 0;
        for (double v : values)
            within += v >= center / 2.0 && v <= center * 2.0;
        return static_cast<double>(within) /
               static_cast<double>(values.size());
    };
    const double median_coverage = coverage(light_samples, light_median);
    const double mean_coverage = coverage(light_samples, light_mean);
    std::cout << util::format(
        "light-op samples within 2x of the estimate: median %.0f%%, "
        "mean %.0f%%\n",
        100.0 * median_coverage, 100.0 * mean_coverage);

    bench::CheckSummary summary;
    summary.check("trainer's light median equals the pooled median",
                  model.lightMedianUs / light_median, 0.99, 1.01);
    summary.check("light-op mean inflated vs median by outliers "
                  "(paper's rationale)",
                  light_mean / light_median, 1.15, 1e9);
    summary.check("CPU-op mean inflated vs median",
                  cpu_mean / cpu_median, 1.2, 1e9);
    summary.check("median covers at least as many samples as the mean",
                  median_coverage - mean_coverage, -0.01, 1.0);
    return summary.finish();
}
