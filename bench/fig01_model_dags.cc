/**
 * @file
 * Figure 1 (analog): the paper's Fig. 1 shows the Inception-v3 DAG and
 * makes the structural point that CNNs contain *many* operations drawn
 * from a *small* set of unique operation types — the insight Ceer's
 * whole design rests on (Sec. III-A, insight 1).
 *
 * This bench prints, for every zoo CNN, the graph size, the number of
 * distinct op types, and the dominant types, and checks the paper's
 * structural claims. (`ceer dot --model inception_v3` renders the
 * actual DAG.)
 */

#include "bench/common.h"

#include <set>

#include "models/model_zoo.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;

    const bench::BenchConfig config = bench::parseBenchFlags(argc, argv);
    util::printBanner(std::cout,
                      "Figure 1 analog: op counts vs unique op types "
                      "per CNN");

    util::TablePrinter table({"CNN", "ops", "unique op types",
                              "top-3 types"});
    std::size_t max_unique = 0;
    std::size_t min_ops = SIZE_MAX;
    std::set<graph::OpType> union_types;
    for (const std::string &name : models::allModelNames()) {
        const graph::Graph g = models::buildModel(name, config.batch);
        const auto counts = g.countByOpType();
        std::string top;
        for (std::size_t i = 0; i < std::min<std::size_t>(3,
                                                          counts.size());
             ++i) {
            if (i)
                top += ", ";
            top += util::format("%s x%zu",
                                graph::opTypeName(counts[i].type)
                                    .c_str(),
                                counts[i].count);
        }
        table.addRow({name, std::to_string(g.size()),
                      std::to_string(counts.size()), top});
        max_unique = std::max(max_unique, counts.size());
        min_ops = std::min(min_ops, g.size());
        for (const auto &entry : counts)
            union_types.insert(entry.type);
    }
    table.print(std::cout);
    std::cout << "union of op types across all 12 CNNs: "
              << union_types.size() << "\n";

    bench::CheckSummary summary;
    summary.check("every CNN has >= 100 operations", min_ops, 100,
                  1e9);
    summary.check("no CNN uses more than ~40 unique op types "
                  "(paper: 'fairly small')",
                  max_unique, 0, 40);
    summary.check("all 12 CNNs combined draw from a small shared set",
                  union_types.size(), 0, 45);
    return summary.finish();
}
