/**
 * @file
 * End-to-end Ceer walkthrough: profile the 8 training CNNs on all four
 * simulated AWS GPU models, train Ceer, then (a) validate prediction
 * accuracy on a held-out CNN and (b) recommend the optimal instance
 * for training it under a user objective.
 *
 * Usage:
 *   recommend_instance [--model resnet_101] [--iters 120]
 *       [--objective cost|time] [--total-budget 25]
 *       [--samples 1200000] [--batch 32]
 */

#include <iostream>

#include "baselines/baselines.h"
#include "cloud/instances.h"
#include "core/predictor.h"
#include "core/recommender.h"
#include "core/trainer.h"
#include "models/model_zoo.h"
#include "profile/profiler.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace ceer;

    util::Flags flags;
    flags.defineString("model", "resnet_101",
                       "held-out CNN to place (a test-set model)");
    flags.defineInt("iters", 120,
                    "profiling iterations per (CNN, GPU) run");
    flags.defineString("objective", "cost", "minimize 'cost' or 'time'");
    flags.defineDouble("total-budget", 1e18,
                       "total training budget in USD");
    flags.defineInt("samples", 1200000, "dataset size (ImageNet: 1.2M)");
    flags.defineInt("batch", 32, "per-GPU batch size");
    flags.parse(argc, argv);

    const std::int64_t batch = flags.getInt("batch");
    const std::int64_t samples = flags.getInt("samples");

    // 1. The empirical study: profile the training CNNs.
    profile::CollectOptions collect;
    collect.batch = batch;
    collect.iterations = static_cast<int>(flags.getInt("iters"));
    std::cout << "profiling " << models::trainingSetNames().size()
              << " training CNNs on 4 GPU models ("
              << collect.iterations << " iterations each)...\n";
    const profile::ProfileDataset dataset =
        profile::collectProfiles(models::trainingSetNames(), collect);

    // 2. Train Ceer.
    const core::CeerModel model = core::trainCeer(dataset);
    const auto [r2_lo, r2_hi] = model.opModelR2Range();
    std::cout << "trained Ceer: " << model.heavyOps.size()
              << " heavy op types, R^2 in "
              << util::format("[%.2f, %.2f]", r2_lo, r2_hi)
              << ", light median "
              << util::format("%.0fus", model.lightMedianUs)
              << ", CPU median "
              << util::format("%.0fus", model.cpuMedianUs) << "\n\n";
    const core::CeerPredictor predictor(model);

    // 3. Validate on the held-out CNN: predicted vs observed
    //    per-iteration time on every 4-GPU instance.
    const std::string target = flags.getString("model");
    const graph::Graph g = models::buildModel(target, batch);
    std::cout << "validation on held-out " << target << " (4 GPUs):\n";
    util::TablePrinter validation(
        {"GPU", "observed/iter", "predicted/iter", "error"});
    for (hw::GpuModel gpu : hw::allGpuModels()) {
        sim::SimConfig config;
        config.gpu = gpu;
        config.numGpus = 4;
        config.seed = 20260705;
        sim::TrainingSimulator simulator(g, config);
        const double observed =
            simulator.run(collect.iterations).iterationUs.mean();
        const double predicted = predictor.predictIterationUs(g, gpu, 4);
        validation.addRow(
            {hw::gpuModelName(gpu), util::humanMicros(observed),
             util::humanMicros(predicted),
             util::format("%+.1f%%",
                          100.0 * (predicted - observed) / observed)});
    }
    validation.print(std::cout);

    // 4. Recommend an instance.
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();
    core::WorkloadSpec workload{&g, samples, batch};
    core::Constraints constraints;
    constraints.totalBudgetUsd = flags.getDouble("total-budget");
    const core::Objective objective =
        flags.getString("objective") == "time"
            ? core::Objective::MinTrainingTime
            : core::Objective::MinCost;
    const core::Recommendation recommendation =
        core::recommend(predictor, workload, catalog.instances(),
                        objective, constraints);

    std::cout << "\nevaluations for " << target << " over "
              << util::format("%.1fM", samples / 1e6) << " samples:\n";
    util::TablePrinter table(
        {"instance", "GPUs", "$/hr", "pred. time", "pred. cost",
         "feasible"});
    for (const auto &evaluation : recommendation.evaluations) {
        table.addRow({evaluation.instance.name,
                      std::to_string(evaluation.instance.numGpus),
                      util::format("%.3f",
                                   evaluation.instance.hourlyUsd),
                      util::format("%.2fh", evaluation.prediction.hours),
                      util::format("$%.2f", evaluation.costUsd),
                      evaluation.feasible() ? "yes" : "no"});
    }
    table.print(std::cout);

    if (recommendation.bestIndex >= 0) {
        const auto &best = recommendation.best();
        std::cout << "\nCeer recommends: " << best.instance.name << " ("
                  << best.instance.numGpus << "x "
                  << hw::gpuModelName(best.instance.gpu) << ") -> "
                  << util::format("%.2fh", best.prediction.hours)
                  << " for " << util::format("$%.2f", best.costUsd)
                  << "\n";

        // Explain where Ceer thinks the time goes on that instance.
        const core::PredictionBreakdown breakdown =
            predictor.breakdown(g, best.instance.gpu,
                                best.instance.numGpus);
        std::cout << "per-iteration breakdown: heavy "
                  << util::humanMicros(breakdown.heavyUs) << ", light "
                  << util::humanMicros(breakdown.lightUs) << ", CPU "
                  << util::humanMicros(breakdown.cpuUs) << ", comm "
                  << util::humanMicros(breakdown.commUs)
                  << "; top ops:";
        for (std::size_t i = 0;
             i < std::min<std::size_t>(3, breakdown.heavyByType.size());
             ++i) {
            std::cout << " "
                      << graph::opTypeName(
                             breakdown.heavyByType[i].first)
                      << " ("
                      << util::humanMicros(
                             breakdown.heavyByType[i].second)
                      << ")";
        }
        std::cout << "\n";
        const auto &cheap =
            baselines::cheapestInstance(catalog.instances());
        const auto cheap_prediction =
            predictor.predictTraining(g, cheap, samples, batch);
        std::cout << "baseline (cheapest instance, " << cheap.name
                  << "): "
                  << util::format("%.2fh", cheap_prediction.hours)
                  << " for "
                  << util::format(
                         "$%.2f",
                         cheap_prediction.costUsd(cheap.hourlyUsd))
                  << "\n";
    } else {
        std::cout << "\nno instance satisfies the constraints\n";
    }
    return 0;
}
