/**
 * @file
 * The downstream-user story: define your *own* CNN with GraphBuilder,
 * then ask Ceer where to train it — no zoo involvement.
 *
 * The example builds a compact VGG-ish network for 64x64 inputs,
 * prints its layer summary and memory footprint, trains Ceer on the
 * paper's training set, and recommends an instance for a 200k-sample
 * dataset under a $15 total budget.
 *
 * Usage:
 *   custom_cnn [--iters 120] [--batch 64] [--total-budget 15]
 */

#include <iostream>

#include "core/recommender.h"
#include "core/trainer.h"
#include "graph/autodiff.h"
#include "graph/builder.h"
#include "graph/summary.h"
#include "hw/memory.h"
#include "hw/op_cost.h"
#include "models/model_zoo.h"
#include "profile/profiler.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace ceer;

/** A small custom network: 4 conv stages + 2 FC layers, 64x64 RGB. */
graph::Graph
buildMyCnn(std::int64_t batch)
{
    graph::GraphBuilder b("my_cnn", batch);
    graph::NodeId x = b.imageInput(64, 64, 3);
    x = b.transpose(x, "data_format");

    graph::ConvOptions conv;
    conv.batchNorm = true;
    conv.relu = true;
    for (int stage = 0; stage < 4; ++stage) {
        const std::int64_t width = 32 << stage;
        x = b.conv2d(x, width, 3, 3, conv,
                     util::format("stage%d/a", stage + 1));
        x = b.conv2d(x, width, 3, 3, conv,
                     util::format("stage%d/b", stage + 1));
        x = b.maxPool(x, 2, 2, graph::PaddingMode::Valid,
                      util::format("stage%d/pool", stage + 1));
    }
    x = b.fullyConnected(x, 512, /*relu=*/true, "fc1");
    x = b.dropout(x, "drop");
    x = b.fullyConnected(x, 100, /*relu=*/false, "logits");

    const graph::NodeId loss = b.softmaxLoss(x);
    graph::addTrainingOps(b.graph(), loss);
    return b.finish();
}

} // namespace

int
main(int argc, char **argv)
{
    util::Flags flags;
    flags.defineInt("iters", 120, "profiling iterations per run");
    flags.defineInt("batch", 64, "per-GPU batch size");
    flags.defineDouble("total-budget", 15.0, "training budget (USD)");
    flags.defineInt("samples", 200000, "dataset size");
    flags.parse(argc, argv);
    const std::int64_t batch = flags.getInt("batch");

    // 1. Define the network and inspect it.
    const graph::Graph g = buildMyCnn(batch);
    graph::summarize(g, 2, [](const graph::Node &node) {
        return hw::opCost(node).flops;
    }).print(std::cout);
    const hw::MemoryEstimate memory = hw::estimateTrainingMemory(g);
    std::cout << "estimated training footprint: "
              << util::format("%.1f GB", memory.totalGB())
              << " per GPU at batch " << batch << "\n\n";

    // 2. Train Ceer once on the paper's training CNNs (the custom
    //    network itself is never profiled — that is the point).
    profile::CollectOptions options;
    options.iterations = static_cast<int>(flags.getInt("iters"));
    std::cout << "training Ceer on the 8-CNN training set...\n";
    const core::CeerModel model = core::trainCeer(
        profile::collectProfiles(models::trainingSetNames(), options));
    const core::CeerPredictor predictor(model);

    // 3. Recommend an instance for the custom workload.
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();
    core::WorkloadSpec workload{&g, flags.getInt("samples"), batch};
    core::Constraints constraints;
    constraints.totalBudgetUsd = flags.getDouble("total-budget");
    const core::Recommendation recommendation = core::recommend(
        predictor, workload, catalog.instances(),
        core::Objective::MinTrainingTime, constraints);

    util::TablePrinter table({"instance", "pred time", "pred cost",
                              "fits memory", "feasible"});
    for (const auto &evaluation : recommendation.evaluations) {
        table.addRow({evaluation.instance.name,
                      util::format("%.2fh",
                                   evaluation.prediction.hours),
                      util::format("$%.2f", evaluation.costUsd),
                      evaluation.fitsMemory ? "yes" : "no",
                      evaluation.feasible() ? "yes" : "no"});
    }
    table.print(std::cout);

    if (recommendation.bestIndex < 0) {
        std::cout << "no instance fits the budget — raise "
                     "--total-budget\n";
        return 1;
    }
    const auto &best = recommendation.best();
    std::cout << "\nfastest instance within $"
              << util::format("%.0f", constraints.totalBudgetUsd)
              << ": " << best.instance.name << " ("
              << util::format("%.2fh", best.prediction.hours) << ", "
              << util::format("$%.2f", best.costUsd) << ")\n";
    return 0;
}
