/**
 * @file
 * Quickstart: build a CNN from the zoo, simulate training on each AWS
 * GPU model, and print per-iteration timings and data-parallel scaling.
 *
 * Usage:
 *   quickstart [--model inception_v1] [--batch 32] [--iters 40]
 */

#include <cstdio>
#include <iostream>

#include <fstream>

#include "models/model_zoo.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "util/logging.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace ceer;

    util::Flags flags;
    flags.defineString("model", "inception_v1", "zoo model to simulate");
    flags.defineInt("batch", 32, "per-GPU batch size");
    flags.defineInt("iters", 40, "iterations to simulate per point");
    flags.defineString("trace", "",
                       "write a chrome://tracing timeline of one "
                       "V100 iteration to this file");
    flags.parse(argc, argv);

    const std::string model_name = flags.getString("model");
    const std::int64_t batch = flags.getInt("batch");
    const int iters = static_cast<int>(flags.getInt("iters"));

    const graph::Graph g = models::buildModel(model_name, batch);
    std::cout << "model: " << g.name() << "\n"
              << "  ops: " << g.size() << " (" << g.gpuOpCount()
              << " GPU, " << g.cpuOpCount() << " CPU)\n"
              << "  trainable parameters: "
              << util::format("%.1fM",
                              static_cast<double>(g.totalParameters()) /
                                  1e6)
              << "\n\n";

    util::TablePrinter table({"GPU (family)", "1 GPU", "2 GPUs",
                              "3 GPUs", "4 GPUs", "comm@4 (%)"});
    for (hw::GpuModel gpu : hw::allGpuModels()) {
        std::vector<std::string> row{hw::gpuModelName(gpu) + " (" +
                                     hw::gpuFamilyName(gpu) + ")"};
        double comm_fraction = 0.0;
        for (int k = 1; k <= 4; ++k) {
            sim::SimConfig config;
            config.gpu = gpu;
            config.numGpus = k;
            sim::TrainingSimulator simulator(g, config);
            const sim::RunStats stats = simulator.run(iters);
            row.push_back(util::humanMicros(stats.iterationUs.mean()));
            if (k == 4) {
                comm_fraction = 100.0 * stats.commUs.mean() /
                                stats.iterationUs.mean();
            }
        }
        row.push_back(util::format("%.1f", comm_fraction));
        table.addRow(row);
    }
    std::cout << "per-iteration training time (batch " << batch
              << "/GPU, data parallelism):\n";
    table.print(std::cout);

    const std::string trace_path = flags.getString("trace");
    if (!trace_path.empty()) {
        sim::SimConfig config;
        const sim::IterationTrace trace =
            sim::traceIteration(g, config);
        std::ofstream out(trace_path);
        if (!out)
            util::fatal("cannot open " + trace_path);
        trace.writeChromeTrace(out);
        std::cout << "\nwrote " << trace.events().size()
                  << "-event timeline to " << trace_path
                  << " (open in chrome://tracing)\n";
    }
    return 0;
}
