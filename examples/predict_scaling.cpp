/**
 * @file
 * What-if analysis with a saved Ceer model: for a chosen CNN, predict
 * per-iteration time, full-training time and cost across every GPU
 * family and 1-8 GPUs — without touching the simulator. Demonstrates
 * loading a model produced by `export_profiles` (trains one on the fly
 * if no file is given) and the comm model's extrapolation beyond the
 * trained widths.
 *
 * Usage:
 *   predict_scaling [--model vgg_19] [--ceer-model ceer_model.txt]
 *       [--samples 1200000] [--batch 32] [--max-gpus 8]
 */

#include <fstream>
#include <iostream>

#include "cloud/instances.h"
#include "core/predictor.h"
#include "core/trainer.h"
#include "models/model_zoo.h"
#include "profile/profiler.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace ceer;

    util::Flags flags;
    flags.defineString("model", "vgg_19", "CNN to analyze");
    flags.defineString("ceer-model", "",
                       "trained model file (empty: train now)");
    flags.defineInt("samples", 1200000, "dataset size");
    flags.defineInt("batch", 32, "per-GPU batch size");
    flags.defineInt("max-gpus", 8, "largest data-parallel width");
    flags.defineInt("iters", 120, "profiling iterations if training");
    flags.parse(argc, argv);

    core::CeerModel model;
    const std::string model_path = flags.getString("ceer-model");
    if (!model_path.empty()) {
        std::ifstream in(model_path);
        if (!in)
            util::fatal("cannot open " + model_path);
        model = core::CeerModel::load(in);
        std::cout << "loaded Ceer model from " << model_path << "\n";
    } else {
        profile::CollectOptions options;
        options.batch = flags.getInt("batch");
        options.iterations = static_cast<int>(flags.getInt("iters"));
        std::cout << "no --ceer-model given; training on the 8-CNN "
                     "training set...\n";
        model = core::trainCeer(profile::collectProfiles(
            models::trainingSetNames(), options));
    }
    const core::CeerPredictor predictor(std::move(model));

    const std::string target = flags.getString("model");
    const std::int64_t batch = flags.getInt("batch");
    const std::int64_t samples = flags.getInt("samples");
    const int max_gpus = static_cast<int>(flags.getInt("max-gpus"));
    const graph::Graph g = models::buildModel(target, batch);
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();

    std::cout << "\nscaling forecast for " << target << " ("
              << util::format("%.1fM", g.totalParameters() / 1e6)
              << " params, " << util::format("%.1fM", samples / 1e6)
              << " samples, batch " << batch << "/GPU):\n";
    for (hw::GpuModel gpu : hw::allGpuModels()) {
        util::TablePrinter table({"GPUs", "pred/iter", "pred total",
                                  "pred cost", "speedup vs 1"});
        double base_hours = 0.0;
        for (int k = 1; k <= max_gpus; ++k) {
            const core::TrainingPrediction prediction =
                predictor.predictTraining(g, gpu, k, samples, batch);
            // Instances beyond 4 GPUs are priced linearly per GPU, as
            // the paper does for its proxies.
            const double hourly =
                k <= 4 ? catalog.find(gpu, k).hourlyUsd
                       : catalog.find(gpu, 1).hourlyUsd * k;
            if (k == 1)
                base_hours = prediction.hours;
            table.addRow(
                {std::to_string(k),
                 util::humanMicros(prediction.iterationUs),
                 util::format("%.2fh", prediction.hours),
                 util::format("$%.2f", prediction.costUsd(hourly)),
                 util::format("%.2fx",
                              base_hours / prediction.hours)});
        }
        std::cout << "\n" << hw::gpuModelName(gpu) << " ("
                  << hw::gpuFamilyName(gpu) << "):\n";
        table.print(std::cout);
    }
    return 0;
}
