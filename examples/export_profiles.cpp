/**
 * @file
 * Reproduces the paper's data pipeline as a user workflow: run the
 * operation-level empirical study, export the profile dataset to CSV,
 * train Ceer, and save the trained model to a text file that
 * `predict_scaling` (or any downstream tool) can load.
 *
 * Usage:
 *   export_profiles [--iters 200] [--out-profiles profiles.csv]
 *       [--out-model ceer_model.txt] [--models vgg_11,inception_v1,...]
 */

#include <fstream>
#include <iostream>

#include "core/trainer.h"
#include "models/model_zoo.h"
#include "profile/profiler.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace ceer;

    util::Flags flags;
    flags.defineInt("iters", 200, "profiling iterations per run");
    flags.defineInt("batch", 32, "per-GPU batch size");
    flags.defineString("out-profiles", "profiles.csv",
                       "CSV file for the op-level profile dataset");
    flags.defineString("out-model", "ceer_model.txt",
                       "file for the trained Ceer model");
    flags.defineString("models", "",
                       "comma-separated CNNs to profile (default: the "
                       "paper's 8-model training set)");
    flags.parse(argc, argv);

    std::vector<std::string> model_names = models::trainingSetNames();
    if (!flags.getString("models").empty()) {
        model_names.clear();
        for (const auto &name :
             util::split(flags.getString("models"), ',')) {
            if (!name.empty())
                model_names.push_back(util::trim(name));
        }
    }

    profile::CollectOptions options;
    options.batch = flags.getInt("batch");
    options.iterations = static_cast<int>(flags.getInt("iters"));
    std::cout << "profiling " << model_names.size()
              << " CNNs x 4 GPU models x k=1..4 ("
              << options.iterations << " iterations each)...\n";
    const profile::ProfileDataset dataset =
        profile::collectProfiles(model_names, options);

    const std::string profile_path = flags.getString("out-profiles");
    {
        std::ofstream out(profile_path);
        if (!out)
            util::fatal("cannot open " + profile_path);
        dataset.saveCsv(out);
    }
    std::cout << "wrote " << dataset.ops().size()
              << " op-instance profiles to " << profile_path << "\n";

    const core::CeerModel model = core::trainCeer(dataset);
    const std::string model_path = flags.getString("out-model");
    {
        std::ofstream out(model_path);
        if (!out)
            util::fatal("cannot open " + model_path);
        model.save(out);
    }
    const auto [r2_lo, r2_hi] = model.opModelR2Range();
    std::cout << "wrote trained Ceer model to " << model_path << " ("
              << model.heavyOps.size() << " heavy op types, R^2 "
              << util::format("[%.2f, %.2f]", r2_lo, r2_hi) << ")\n";
    return 0;
}
