/**
 * @file
 * Head-to-head comparison of Ceer against the prior-work-style
 * predictors on the held-out CNNs (Sec. VII): full Ceer, Ceer without
 * light/CPU medians (layer-level modeling a la Giannini et al.), Ceer
 * without the comm model (Cai/Justus et al.), and the PALEO-style
 * FLOP-count predictor.
 *
 * Usage:
 *   compare_predictors [--iters 120] [--gpus 1|2|4]
 */

#include <cmath>
#include <iostream>

#include "baselines/baselines.h"
#include "core/predictor.h"
#include "core/trainer.h"
#include "models/model_zoo.h"
#include "profile/profiler.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace ceer;

    util::Flags flags;
    flags.defineInt("iters", 120, "profiling iterations per run");
    flags.defineInt("gpus", 1, "data-parallel width to evaluate");
    flags.defineInt("batch", 32, "per-GPU batch size");
    flags.parse(argc, argv);
    const int k = static_cast<int>(flags.getInt("gpus"));
    const std::int64_t batch = flags.getInt("batch");

    profile::CollectOptions options;
    options.batch = batch;
    options.iterations = static_cast<int>(flags.getInt("iters"));
    std::cout << "training Ceer on the 8-CNN training set...\n";
    const core::CeerModel model = core::trainCeer(
        profile::collectProfiles(models::trainingSetNames(), options));
    const core::CeerPredictor predictor(model);
    const baselines::FlopsPredictor paleo(0.5);

    util::TablePrinter table({"CNN", "GPU", "Ceer", "no light/CPU",
                              "no comm", "PALEO-style"});
    double errors[4] = {0, 0, 0, 0};
    int points = 0;
    for (const std::string &name : models::testSetNames()) {
        const graph::Graph g = models::buildModel(name, batch);
        for (hw::GpuModel gpu : hw::allGpuModels()) {
            sim::SimConfig config;
            config.gpu = gpu;
            config.numGpus = k;
            config.seed = 987 + points;
            sim::TrainingSimulator simulator(g, config);
            const double observed =
                simulator.run(options.iterations).iterationUs.mean();

            const double predictions[4] = {
                predictor.predictIterationUs(g, gpu, k),
                predictor.predictIterationUs(
                    g, gpu, k, baselines::heavyOnlyOptions()),
                predictor.predictIterationUs(
                    g, gpu, k, baselines::noCommOptions()),
                paleo.predictIterationUs(g, gpu),
            };
            std::vector<std::string> row{name, hw::gpuModelName(gpu)};
            for (int i = 0; i < 4; ++i) {
                const double error =
                    predictions[i] / observed - 1.0;
                errors[i] += std::abs(error);
                row.push_back(util::format("%+.1f%%", 100.0 * error));
            }
            table.addRow(row);
            ++points;
        }
    }
    table.print(std::cout);

    std::cout << util::format(
        "\nmean |error| at k=%d:\n"
        "  Ceer (full):                 %5.1f%%\n"
        "  Ceer w/o light+CPU medians:  %5.1f%%\n"
        "  Ceer w/o comm model:         %5.1f%%\n"
        "  PALEO-style (FLOPs only):    %5.1f%%\n",
        k, 100.0 * errors[0] / points, 100.0 * errors[1] / points,
        100.0 * errors[2] / points, 100.0 * errors[3] / points);
    return 0;
}
